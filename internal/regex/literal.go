package regex

// Required-literal extraction for the prefilter fast path. For a pattern's
// AST this file computes a set of byte strings such that EVERY match of the
// pattern contains at least one of them as a contiguous substring. A scanner
// that finds no literal occurrence has therefore proven the pattern cannot
// match — the soundness contract internal/prefilter builds on.
//
// The extractor works on "islands": maximal concatenation runs of small
// character classes. A star, optional, wide class or empty node breaks a
// run (the bytes it matches are not required to appear); an alternation is
// required only if every branch yields a required set (the union is then
// required); a plus contributes its sub-expression's set (the body occurs
// at least once). Among a concatenation's islands the best one — longest
// guaranteed literal, fewest variants — is chosen, since any single island
// suffices for soundness.

// Extraction caps, mirroring prefilter.DefaultConfig so both extraction
// paths produce comparable literal sets.
const (
	litMaxClass    = 4  // widest class expanded into variants
	litMaxVariants = 16 // per-pattern variant cap
	litMaxLen      = 24 // literal length cap (truncation stays sound)
	litMinLen      = 2  // shorter literals filter nothing
)

// RequiredLiterals parses expr and returns a required-literal set: every
// string matched by expr contains at least one returned literal. ok is
// false when the pattern admits matches with no usable literal (wide
// classes everywhere, too many variants, or all islands shorter than the
// minimum); callers must then disable prefiltering for the rule set.
func RequiredLiterals(expr string) (lits [][]byte, ok bool) {
	p := &parser{src: expr}
	root, err := p.parse()
	if err != nil || root.nullable() {
		return nil, false
	}
	isl, ok := bestIsland(root, false)
	if !ok {
		return nil, false
	}
	return isl.variants(), true
}

// RequiredLiteralsFold is RequiredLiterals with ASCII case folding in the
// running: the extractor is run once exactly and once with every class
// folded to canonical lowercase, and the more selective island wins. The
// folded pass rescues case-insensitive patterns whose verbatim variant
// cross product (two variants per letter) explodes the caps and truncates
// the literal to a few characters: folded, each letter is one canonical
// choice and the full-length literal survives. fold reports that the
// returned set is canonical and must be scanned through the fold
// (prefilter.NewScannerFold).
func RequiredLiteralsFold(expr string) (lits [][]byte, fold, ok bool) {
	p := &parser{src: expr}
	root, err := p.parse()
	if err != nil || root.nullable() {
		return nil, false, false
	}
	exact, okE := bestIsland(root, false)
	folded, okF := bestIsland(root, true)
	switch {
	case okE && okF:
		// Prefer exact on ties: folding is free selectivity only when it
		// lengthens the guaranteed literal or shrinks the set.
		if better(folded, exact) {
			return folded.variants(), true, true
		}
		return exact.variants(), false, true
	case okF:
		return folded.variants(), true, true
	case okE:
		return exact.variants(), false, true
	}
	return nil, false, false
}

// island is a run of byte alternatives: positions[i] holds the candidate
// bytes at offset i. Its variant expansion is the cross product.
type island struct {
	positions [][]byte
	// union holds pre-expanded literals (from alternations) instead of a
	// positional run; positions is nil when union is set.
	union [][]byte
}

func (is island) minLen() int {
	if is.positions != nil {
		return len(is.positions)
	}
	ml := 0
	for _, l := range is.union {
		if ml == 0 || len(l) < ml {
			ml = len(l)
		}
	}
	return ml
}

func (is island) variantCount() int {
	if is.union != nil {
		return len(is.union)
	}
	n := 1
	for _, p := range is.positions {
		n *= len(p)
		if n > litMaxVariants {
			return n
		}
	}
	return n
}

// variants expands the island into concrete literals.
func (is island) variants() [][]byte {
	if is.union != nil {
		return is.union
	}
	out := [][]byte{nil}
	for _, p := range is.positions {
		next := make([][]byte, 0, len(out)*len(p))
		for _, prefix := range out {
			for _, b := range p {
				v := make([]byte, len(prefix)+1)
				copy(v, prefix)
				v[len(prefix)] = b
				next = append(next, v)
			}
		}
		out = next
	}
	return out
}

// trim shrinks a positional run to fit the length and variant caps by
// dropping positions from whichever end has the wider class (keeping the
// most selective window). A substring of a required literal is still
// required, so trimming preserves soundness.
func (is island) trim() (island, bool) {
	if is.union != nil {
		return is, len(is.union) <= litMaxVariants && is.minLen() >= litMinLen
	}
	pos := is.positions
	for len(pos) > 0 {
		n := 1
		for _, p := range pos {
			n *= len(p)
		}
		if len(pos) <= litMaxLen && n <= litMaxVariants {
			break
		}
		if len(pos[0]) >= len(pos[len(pos)-1]) {
			pos = pos[1:]
		} else {
			pos = pos[:len(pos)-1]
		}
	}
	if len(pos) < litMinLen {
		return island{}, false
	}
	return island{positions: pos}, true
}

// better reports whether a beats b: longer guaranteed literal first, then
// fewer variants.
func better(a, b island) bool {
	if a.minLen() != b.minLen() {
		return a.minLen() > b.minLen()
	}
	return a.variantCount() < b.variantCount()
}

// bestIsland returns the strongest required island of n, if any. With fold
// set, classes contribute canonical (case-folded) byte choices.
func bestIsland(n node, fold bool) (island, bool) {
	switch n := n.(type) {
	case *classNode:
		bytes, small := classBytes(n, fold)
		if !small {
			return island{}, false
		}
		return island{positions: [][]byte{bytes}}.trim()
	case *concatNode:
		return bestConcatIsland(n.subs, fold)
	case *altNode:
		return altIsland(n, fold)
	case *plusNode:
		return bestIsland(n.sub, fold)
	default:
		// star, opt, empty: their bytes may be absent from a match.
		return island{}, false
	}
}

// altIsland requires every branch to yield a set; the union is required.
func altIsland(n *altNode, fold bool) (island, bool) {
	var u [][]byte
	for _, sub := range n.subs {
		isl, ok := bestIsland(sub, fold)
		if !ok {
			return island{}, false
		}
		u = append(u, isl.variants()...)
	}
	if len(u) > litMaxVariants {
		return island{}, false
	}
	return island{union: u}, true
}

// bestConcatIsland scans a concatenation, accumulating runs of small
// classes and closing them at breakers; nested alt/plus nodes contribute
// their own sets as standalone islands.
func bestConcatIsland(subs []node, fold bool) (island, bool) {
	var best island
	found := false
	consider := func(is island, ok bool) {
		if !ok {
			return
		}
		if is2, ok2 := is.trim(); ok2 && (!found || better(is2, best)) {
			best, found = is2, true
		}
	}
	var run [][]byte
	closeRun := func() {
		if len(run) > 0 {
			consider(island{positions: run}, true)
			run = nil
		}
	}
	for _, sub := range flattenConcat(subs) {
		if c, isClass := sub.(*classNode); isClass {
			if bytes, small := classBytes(c, fold); small {
				run = append(run, bytes)
				continue
			}
		}
		closeRun()
		// A non-class element can still carry its own required set
		// (nested concat, alt of literals, plus of a literal).
		if _, isClass := sub.(*classNode); !isClass {
			consider(bestIsland(sub, fold))
		}
	}
	closeRun()
	return best, found
}

// flattenConcat splices nested concatenations (bounded repetition expands
// into nested concat nodes) so literal runs extend across them.
func flattenConcat(subs []node) []node {
	flat := make([]node, 0, len(subs))
	for _, sub := range subs {
		if c, ok := sub.(*concatNode); ok {
			flat = append(flat, flattenConcat(c.subs)...)
			continue
		}
		flat = append(flat, sub)
	}
	return flat
}

// classBytes expands a class node's symbol set when it is small enough to
// enumerate as literal variants. With fold set, both cases of a letter
// collapse to one canonical lowercase choice before the width cap applies.
func classBytes(c *classNode, fold bool) ([]byte, bool) {
	var seen [256]bool
	var out []byte
	for b := 0; b < 256; b++ {
		if c.set.Get(b) {
			v := byte(b)
			if fold {
				v = foldByte(v)
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, v)
			if len(out) > litMaxClass {
				return nil, false
			}
		}
	}
	return out, len(out) > 0
}

// foldByte maps ASCII uppercase to lowercase (prefilter.FoldByte's
// contract, duplicated to keep this package scanner-independent).
func foldByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + ('a' - 'A')
	}
	return b
}
