package regex

import (
	"fmt"

	"sunder/internal/automata"
)

// Pattern pairs a regular expression with the report code its matches carry.
type Pattern struct {
	// Expr is the regular expression source.
	Expr string
	// Code identifies the pattern in reports (e.g. a Snort rule ID).
	Code int32
}

// Compile compiles a single pattern into a homogeneous NFA. Matching is
// unanchored unless the pattern starts with "^": an unanchored pattern
// reports at every input position where an occurrence ends, the standard
// automata-processing semantics.
func Compile(expr string, code int32) (*automata.Automaton, error) {
	p := &parser{src: expr}
	root, err := p.parse()
	if err != nil {
		return nil, err
	}
	if root.nullable() {
		return nil, fmt.Errorf("regex: pattern %q can match the empty string; homogeneous STEs report only on symbol activation", expr)
	}
	a := build(root, p.anchored, code)
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("regex: internal error compiling %q: %w", expr, err)
	}
	return a, nil
}

// CompileSet compiles a rule set into a single automaton (the union of the
// per-pattern automata), the way pattern sets are deployed on automata
// processors.
func CompileSet(patterns []Pattern) (*automata.Automaton, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("regex: empty pattern set")
	}
	var out *automata.Automaton
	for _, p := range patterns {
		a, err := Compile(p.Expr, p.Code)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = a
		} else {
			out.Union(a)
		}
	}
	return out, nil
}

// MustCompile is Compile but panics on error; for tests and tables of
// known-good patterns.
func MustCompile(expr string, code int32) *automata.Automaton {
	a, err := Compile(expr, code)
	if err != nil {
		panic(err)
	}
	return a
}
