package regex

import (
	"math/rand"
	"regexp"
	"testing"

	"sunder/internal/funcsim"
)

// corpus lists patterns valid in both this package and Go's regexp, used by
// the differential oracle tests.
var corpus = []string{
	`abc`,
	`a`,
	`ab|cd`,
	`a|bc|ddd`,
	`[a-c]d`,
	`[^a]b`,
	`a.c`,
	`ab*c`,
	`ab+c`,
	`ab?c`,
	`(ab)+c`,
	`(a|b)(c|d)`,
	`a(bc|de)*f`,
	`ab{2,4}c`,
	`ab{2}c`,
	`ab{2,}c`,
	`\da`,
	`\wb`,
	`a\sb`,
	`a\S`,
	`[ab][cd][ef]`,
	`^abc`,
	`^a+b`,
	`a[b-d]*e`,
	`(a+|b+)c`,
	`a(b|c)d(e|f)g`,
	`aa(bb)?cc`,
	`[^abc]{2}d`,
	`\x61\x62`,
	`a\.b`,
	`[\d]a`,
	`[\w.]b`,
	`[x\s]c`,
	`[\Da]b`,
	`[\x61-\x63]d`,
	`[a\t\n]e`,
	`(ab|cd){2}e`,
	`(a[bc]){1,2}d`,
	`(a|b.c){2,}d`,
	`x\fy?`,
	`x\vy?`,
	`a\0?b`,
	`[\W]a`,
	`[\S]{2}`,
	`f{3}`,
	`(?i)abc`,
	`(?i)a[b-d]+e`,
	`(?i)[^a]b`,
	`(?i)^ab`,
	`(?i)A|Bc`,
	`(?i)x\d`,
}

// matchEnds returns, per end position e (1-based), whether some occurrence
// of pattern ends exactly at e, using Go's regexp as the oracle.
func matchEnds(t *testing.T, pattern string, input []byte) []bool {
	t.Helper()
	re, err := regexp.Compile(`(?s)(?:` + pattern + `)\z`)
	if err != nil {
		t.Fatalf("oracle compile %q: %v", pattern, err)
	}
	out := make([]bool, len(input)+1)
	for e := 1; e <= len(input); e++ {
		out[e] = re.Match(input[:e])
	}
	return out
}

func TestDifferentialAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("abcdefABCD .\t0_")
	for _, pattern := range corpus {
		a, err := Compile(pattern, 0)
		if err != nil {
			t.Fatalf("Compile(%q): %v", pattern, err)
		}
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(60) + 1
			input := make([]byte, n)
			for i := range input {
				input[i] = alphabet[rng.Intn(len(alphabet))]
			}
			want := matchEnds(t, pattern, input)
			res := funcsim.RunBytes(a, input)
			got := make([]bool, len(input)+1)
			for _, ev := range res.Events {
				got[ev.Cycle+1] = true
			}
			for e := 1; e <= len(input); e++ {
				if got[e] != want[e] {
					t.Fatalf("pattern %q input %q: end position %d: got %v, want %v",
						pattern, input, e, got[e], want[e])
				}
			}
		}
	}
}

func TestDifferentialPlantedMatches(t *testing.T) {
	// Random inputs rarely exercise long literals; plant them.
	rng := rand.New(rand.NewSource(2))
	plants := map[string][]string{
		`abc`:        {"abc"},
		`ab{2,4}c`:   {"abbc", "abbbc", "abbbbc", "abbbbbc"},
		`(ab)+c`:     {"ababc", "abc"},
		`a(bc|de)*f`: {"af", "abcf", "abcdef", "adebcf"},
		`^abc`:       {"abc"},
		`a[b-d]*e`:   {"ae", "abcde"},
		`(?i)abc`:    {"abc", "ABC", "aBc"},
		`(?i)[^a]bc`: {"xbc", "XBC", "abc"},
	}
	for pattern, seeds := range plants {
		a, err := Compile(pattern, 0)
		if err != nil {
			t.Fatalf("Compile(%q): %v", pattern, err)
		}
		for _, seed := range seeds {
			for trial := 0; trial < 10; trial++ {
				pre := make([]byte, rng.Intn(8))
				post := make([]byte, rng.Intn(8))
				for i := range pre {
					pre[i] = byte('a' + rng.Intn(6))
				}
				for i := range post {
					post[i] = byte('a' + rng.Intn(6))
				}
				input := append(append(pre, seed...), post...)
				want := matchEnds(t, pattern, input)
				res := funcsim.RunBytes(a, input)
				got := make([]bool, len(input)+1)
				for _, ev := range res.Events {
					got[ev.Cycle+1] = true
				}
				for e := 1; e <= len(input); e++ {
					if got[e] != want[e] {
						t.Fatalf("pattern %q input %q end %d: got %v want %v",
							pattern, input, e, got[e], want[e])
					}
				}
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,        // empty matches empty string
		`a*`,      // nullable
		`a?`,      // nullable
		`(a|)b`,   // nullable branch is fine... but empty alt branch parses to empty node; (a|)b is not nullable overall — should compile
		`*a`,      // dangling quantifier
		`a)`,      // unmatched
		`(ab`,     // missing )
		`a$`,      // unsupported anchor
		`[a`,      // unterminated class
		`[]`,      // empty class... parses ']' as literal first char: "[]" is missing close
		`a{3,1}b`, // inverted count
		`a\`,      // trailing backslash
		`ab^c`,    // misplaced anchor
	}
	for _, p := range bad {
		if p == `(a|)b` {
			if _, err := Compile(p, 0); err != nil {
				t.Errorf("Compile(%q) rejected: %v", p, err)
			}
			continue
		}
		if _, err := Compile(p, 0); err == nil {
			t.Errorf("Compile(%q) accepted", p)
		}
	}
}

func TestClassEscapeErrors(t *testing.T) {
	bad := []string{
		`[\d-z]a`, // class escape as range endpoint
		`[a-\w]b`, // class escape as range endpoint
		`[\`,      // trailing backslash in class
		`[\x6]`,   // truncated hex in class
		`[\xzz]`,  // bad hex in class
		`a\x6`,    // truncated hex outside class
		`a\xzz`,   // bad hex outside class
	}
	for _, p := range bad {
		if _, err := Compile(p, 0); err == nil {
			t.Errorf("Compile(%q) accepted", p)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Compile(`ab)`, 0)
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Pos != 2 || se.Pattern != `ab)` {
		t.Errorf("SyntaxError = %+v", se)
	}
}

func TestAnchoredStart(t *testing.T) {
	a := MustCompile(`^ab`, 0)
	res := funcsim.RunBytes(a, []byte("abab"))
	if len(res.Events) != 1 || res.Events[0].Cycle != 1 {
		t.Errorf("anchored events = %+v", res.Events)
	}
	b := MustCompile(`ab`, 0)
	res = funcsim.RunBytes(b, []byte("abab"))
	if len(res.Events) != 2 {
		t.Errorf("unanchored events = %+v", res.Events)
	}
}

func TestReportCodes(t *testing.T) {
	set, err := CompileSet([]Pattern{{Expr: `aa`, Code: 10}, {Expr: `bb`, Code: 20}})
	if err != nil {
		t.Fatal(err)
	}
	res := funcsim.RunBytes(set, []byte("aabb"))
	if len(res.Events) != 2 || res.Events[0].Code != 10 || res.Events[1].Code != 20 {
		t.Errorf("events = %+v", res.Events)
	}
}

func TestCompileSetEmpty(t *testing.T) {
	if _, err := CompileSet(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile(`(`, 0)
}

func TestRepeatBound(t *testing.T) {
	if _, err := Compile(`a{2000}`, 0); err == nil {
		t.Error("accepted huge repeat")
	}
}

func TestLiteralBrace(t *testing.T) {
	// "{" not followed by a count is a literal, as in common engines.
	a, err := Compile(`a{x`, 0)
	if err != nil {
		t.Fatalf("literal brace rejected: %v", err)
	}
	res := funcsim.RunBytes(a, []byte("a{x"))
	if len(res.Events) != 1 {
		t.Errorf("events = %+v", res.Events)
	}
}
