package regex

import (
	"sort"
	"strings"
	"testing"
)

func litStrings(t *testing.T, expr string) []string {
	t.Helper()
	lits, ok := RequiredLiterals(expr)
	if !ok {
		t.Fatalf("RequiredLiterals(%q) failed", expr)
	}
	out := make([]string, len(lits))
	for i, l := range lits {
		out[i] = string(l)
	}
	sort.Strings(out)
	return out
}

func TestRequiredLiteralsPlain(t *testing.T) {
	cases := []struct {
		expr string
		want []string
	}{
		{"needle", []string{"needle"}},
		{"foo[01]bar", []string{"foo0bar", "foo1bar"}},
		{"abc|xyz", []string{"abc", "xyz"}},
		{"a+bcde", []string{"bcde"}},             // plus breaks the run; suffix island wins
		{"(abc)+", []string{"abc"}},              // plus body required once
		{"x*longlit", []string{"longlit"}},       // star prefix optional
		{"^GET /[a-z]+ HTTP", []string{"GET /"}}, // anchored, wide class splits islands
		{"ab{3}cd", []string{"abbbcd"}},          // bounded repeat expands
	}
	for _, c := range cases {
		got := litStrings(t, c.expr)
		want := append([]string(nil), c.want...)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("RequiredLiterals(%q) = %v, want %v", c.expr, got, want)
		}
	}
}

func TestRequiredLiteralsIslandChoice(t *testing.T) {
	// Two islands split by ".*": the longer one must win.
	got := litStrings(t, "ab.*wxyz")
	if len(got) != 1 || got[0] != "wxyz" {
		t.Fatalf("islands = %v, want [wxyz]", got)
	}
}

func TestRequiredLiteralsNoFilter(t *testing.T) {
	for _, expr := range []string{
		".+",         // wide class only
		"[a-z]{4}",   // class too wide to enumerate
		"a",          // below the minimum length
		"abc|[0-9]+", // one branch has no literal -> union invalid
		"aa|bb|cc|dd|ee|ff|gg|hh|ii|jj|kk|ll|mm|nn|oo|pp|qq", // union past the variant cap
	} {
		if lits, ok := RequiredLiterals(expr); ok {
			t.Errorf("RequiredLiterals(%q) = %q, want no-filter verdict", expr, lits)
		}
	}
}

func TestRequiredLiteralsLengthCap(t *testing.T) {
	long := strings.Repeat("a", 100)
	lits, ok := RequiredLiterals(long)
	if !ok || len(lits) != 1 {
		t.Fatalf("long literal extraction = %q, ok=%v", lits, ok)
	}
	if len(lits[0]) != litMaxLen {
		t.Fatalf("capped length = %d, want %d", len(lits[0]), litMaxLen)
	}
	if string(lits[0]) != strings.Repeat("a", litMaxLen) {
		t.Fatalf("capped literal %q not a substring of the pattern literal", lits[0])
	}
}

// TestRequiredLiteralsSound cross-checks the core soundness property on
// compiled automata: deleting every literal occurrence from a matching
// input must kill the match. Covered far more broadly by the facade fuzz
// battery; this is the package-local smoke version.
func TestRequiredLiteralsSound(t *testing.T) {
	cases := []struct {
		expr  string
		match string
	}{
		{"foo[01]bar", "xxfoo1barxx"},
		{"abc|xyz", "..xyz.."},
		{"a+bcde", "aaabcde!"},
	}
	for _, c := range cases {
		lits, ok := RequiredLiterals(c.expr)
		if !ok {
			t.Fatalf("RequiredLiterals(%q) failed", c.expr)
		}
		found := false
		for _, l := range lits {
			if strings.Contains(c.match, string(l)) {
				found = true
			}
		}
		if !found {
			t.Errorf("match %q of %q contains no extracted literal %q", c.match, c.expr, lits)
		}
	}
}
