// Package bitvec provides dense bit vectors used throughout the Sunder
// simulator: state vectors, match vectors, symbol sets, and crossbar rows.
//
// Two flavours are provided. Vector is an arbitrary-length bitset backed by
// a []uint64 and sized at construction. V256 is a fixed 256-bit vector that
// maps one-to-one onto a row or column group of a 256-wide SRAM subarray; it
// is a value type (an array, not a slice) so it can be copied and compared
// cheaply, which the architectural simulator relies on.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-capacity bitset. The zero value is an empty vector of
// length zero; use New to create one with capacity.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a zeroed Vector holding n bits.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// check panics if i is out of range.
func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is 1.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetAll sets every bit to 1.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// Reset sets every bit to 0.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim clears any bits beyond Len in the last word so that population
// counts and comparisons stay exact.
func (v *Vector) trim() {
	if v.n%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.n) % wordBits)) - 1
	}
}

// Count returns the number of 1 bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or sets v to v | o. The vectors must have equal length.
func (v *Vector) Or(o *Vector) {
	v.sameLen(o)
	for i, w := range o.words {
		v.words[i] |= w
	}
}

// And sets v to v & o. The vectors must have equal length.
func (v *Vector) And(o *Vector) {
	v.sameLen(o)
	for i, w := range o.words {
		v.words[i] &= w
	}
}

// AndNot sets v to v &^ o. The vectors must have equal length.
func (v *Vector) AndNot(o *Vector) {
	v.sameLen(o)
	for i, w := range o.words {
		v.words[i] &^= w
	}
}

// CopyFrom overwrites v with the contents of o. The vectors must have equal
// length.
func (v *Vector) CopyFrom(o *Vector) {
	v.sameLen(o)
	copy(v.words, o.words)
}

// Equal reports whether v and o hold identical bits. Vectors of different
// lengths are never equal.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// Intersects reports whether v & o has any bit set, without allocating.
func (v *Vector) Intersects(o *Vector) bool {
	v.sameLen(o)
	for i, w := range o.words {
		if v.words[i]&w != 0 {
			return true
		}
	}
	return false
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// ForEach calls f with the index of every set bit in ascending order.
// It stops early if f returns false.
func (v *Vector) ForEach(f func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Bits returns the indices of all set bits in ascending order.
func (v *Vector) Bits() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the vector as {i,j,...} for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
