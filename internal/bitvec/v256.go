package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// V256 is a fixed 256-bit vector: one row (or one column group) of a
// 256-wide SRAM subarray. It is a value type; assignment copies it, and ==
// compares it, which lets the architectural simulator store rows in plain
// arrays and compare snapshots without allocation.
type V256 [4]uint64

// Set256 sets bit i.
func (v *V256) Set(i int) {
	check256(i)
	v[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (v *V256) Clear(i int) {
	check256(i)
	v[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (v V256) Get(i int) bool {
	check256(i)
	return v[i>>6]&(1<<(uint(i)&63)) != 0
}

func check256(i int) {
	if i < 0 || i >= 256 {
		panic(fmt.Sprintf("bitvec: V256 index %d out of range", i))
	}
}

// And returns v & o.
func (v V256) And(o V256) V256 {
	return V256{v[0] & o[0], v[1] & o[1], v[2] & o[2], v[3] & o[3]}
}

// Or returns v | o.
func (v V256) Or(o V256) V256 {
	return V256{v[0] | o[0], v[1] | o[1], v[2] | o[2], v[3] | o[3]}
}

// AndNot returns v &^ o.
func (v V256) AndNot(o V256) V256 {
	return V256{v[0] &^ o[0], v[1] &^ o[1], v[2] &^ o[2], v[3] &^ o[3]}
}

// Not returns ^v. Together with Or it implements the wired-NOR read the 8T
// subarray performs on its Port-2 bitlines.
func (v V256) Not() V256 {
	return V256{^v[0], ^v[1], ^v[2], ^v[3]}
}

// Any reports whether any bit is set.
func (v V256) Any() bool { return v[0]|v[1]|v[2]|v[3] != 0 }

// Count returns the number of set bits.
func (v V256) Count() int {
	return bits.OnesCount64(v[0]) + bits.OnesCount64(v[1]) +
		bits.OnesCount64(v[2]) + bits.OnesCount64(v[3])
}

// ForEach calls f with the index of every set bit in ascending order.
func (v V256) ForEach(f func(i int)) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

// Bits returns the indices of all set bits in ascending order.
func (v V256) Bits() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the vector as {i,j,...} for debugging.
func (v V256) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
