package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 255, 256, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, v.Len())
		}
		if v.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, v.Count())
		}
		if v.Any() {
			t.Errorf("New(%d).Any() = true", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	idx := []int{0, 1, 63, 64, 65, 128, 199}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Errorf("Count = %d, want %d", v.Count(), len(idx))
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if v.Count() != len(idx)-1 {
		t.Errorf("Count after clear = %d, want %d", v.Count(), len(idx)-1)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Set(10) },
		func() { v.Get(-1) },
		func() { v.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestSetAllRespectsLength(t *testing.T) {
	v := New(70)
	v.SetAll()
	if v.Count() != 70 {
		t.Errorf("SetAll Count = %d, want 70", v.Count())
	}
	v.Reset()
	if v.Any() {
		t.Error("Any after Reset")
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(130)
	b := New(130)
	a.Set(3)
	a.Set(100)
	b.Set(100)
	b.Set(129)

	or := a.Clone()
	or.Or(b)
	if got := or.Bits(); len(got) != 3 || got[0] != 3 || got[1] != 100 || got[2] != 129 {
		t.Errorf("Or bits = %v", got)
	}

	and := a.Clone()
	and.And(b)
	if got := and.Bits(); len(got) != 1 || got[0] != 100 {
		t.Errorf("And bits = %v", got)
	}

	andnot := a.Clone()
	andnot.AndNot(b)
	if got := andnot.Bits(); len(got) != 1 || got[0] != 3 {
		t.Errorf("AndNot bits = %v", got)
	}

	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	c := New(130)
	c.Set(5)
	if a.Intersects(c) {
		t.Error("Intersects = true, want false")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Or on mismatched lengths did not panic")
		}
	}()
	a.Or(b)
}

func TestEqualCloneCopy(t *testing.T) {
	a := New(99)
	a.Set(0)
	a.Set(98)
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	c.Set(50)
	if a.Equal(c) {
		t.Error("mutated clone still equal")
	}
	d := New(99)
	d.CopyFrom(a)
	if !a.Equal(d) {
		t.Error("CopyFrom not equal")
	}
	if a.Equal(New(98)) {
		t.Error("different lengths compare equal")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	v := New(100)
	for i := 0; i < 100; i += 10 {
		v.Set(i)
	}
	n := 0
	v.ForEach(func(i int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("ForEach visited %d bits, want 3", n)
	}
}

func TestString(t *testing.T) {
	v := New(10)
	v.Set(1)
	v.Set(7)
	if s := v.String(); s != "{1,7}" {
		t.Errorf("String = %q", s)
	}
}

// Property: Bits() returns exactly the set positions, sorted ascending.
func TestQuickSetMembership(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		want := map[int]bool{}
		for i := 0; i < n/2; i++ {
			k := rng.Intn(n)
			if rng.Intn(2) == 0 {
				v.Set(k)
				want[k] = true
			} else {
				v.Clear(k)
				delete(want, k)
			}
		}
		bits := v.Bits()
		if len(bits) != len(want) {
			return false
		}
		prev := -1
		for _, b := range bits {
			if !want[b] || b <= prev {
				return false
			}
			prev = b
		}
		return v.Count() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan on random vectors — (a&b) set bits equal bits set in
// both, (a|b) bits set in either.
func TestQuickBooleanOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (a.Get(i) && b.Get(i)) {
				return false
			}
			if or.Get(i) != (a.Get(i) || b.Get(i)) {
				return false
			}
		}
		return or.Count() >= and.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
