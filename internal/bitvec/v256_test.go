package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestV256SetGet(t *testing.T) {
	var v V256
	for _, i := range []int{0, 63, 64, 127, 128, 255} {
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != 6 {
		t.Errorf("Count = %d, want 6", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 set after Clear")
	}
}

func TestV256RangePanics(t *testing.T) {
	var v V256
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range")
		}
	}()
	v.Set(256)
}

func TestV256Ops(t *testing.T) {
	var a, b V256
	a.Set(1)
	a.Set(200)
	b.Set(200)
	b.Set(255)
	if got := a.And(b).Bits(); len(got) != 1 || got[0] != 200 {
		t.Errorf("And = %v", got)
	}
	if got := a.Or(b).Count(); got != 3 {
		t.Errorf("Or count = %d", got)
	}
	if got := a.AndNot(b).Bits(); len(got) != 1 || got[0] != 1 {
		t.Errorf("AndNot = %v", got)
	}
	if a.Not().Count() != 254 {
		t.Errorf("Not count = %d", a.Not().Count())
	}
	if !a.Any() {
		t.Error("Any = false")
	}
	var z V256
	if z.Any() {
		t.Error("zero Any = true")
	}
}

func TestV256ValueSemantics(t *testing.T) {
	var a V256
	a.Set(5)
	b := a
	b.Set(6)
	if a.Get(6) {
		t.Error("copy aliases original")
	}
	if a == b {
		t.Error("distinct vectors compare equal")
	}
}

func TestV256String(t *testing.T) {
	var v V256
	v.Set(2)
	v.Set(3)
	if s := v.String(); s != "{2,3}" {
		t.Errorf("String = %q", s)
	}
}

func TestQuickV256MatchesVector(t *testing.T) {
	// V256 must agree with the generic Vector on every operation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b V256
		ga, gb := New(256), New(256)
		for i := 0; i < 256; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ga.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				gb.Set(i)
			}
		}
		and := a.And(b)
		gand := ga.Clone()
		gand.And(gb)
		or := a.Or(b)
		gor := ga.Clone()
		gor.Or(gb)
		for i := 0; i < 256; i++ {
			if and.Get(i) != gand.Get(i) || or.Get(i) != gor.Get(i) {
				return false
			}
			if a.Not().Get(i) == a.Get(i) {
				return false
			}
		}
		return and.Count() == gand.Count() && or.Count() == gor.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
