// Package llc models the system-integration path of Section 6: realizing
// Sunder by repurposing last-level-cache slices. Configuring the device
// requires *flat* access to specific subarrays, but a Sandy-Bridge-style
// LLC hashes physical addresses across slices at cache-line granularity and
// a slice interleaves lines across ways and sets. The package models:
//
//   - the (reverse-engineered) slice hash: an XOR of selected physical
//     address bits, as in Maurice et al.;
//   - Cache Allocation Technology (CAT) way masking, restricting which
//     ways a configuration stream may touch;
//   - the virtual→physical translation of a large (1GB) page, so that a
//     contiguous virtual configuration image lands on predictable slice
//     addresses;
//   - the address iterator used to write an automaton's configuration
//     into the subarrays of a chosen slice/way, and to read report rows
//     back (load for immediate processing, clflush for post-processing).
//
// The model is functional, not timing-accurate: its purpose is to exercise
// the configuration path end to end (hash → slice → way → subarray row)
// and to verify that every subarray row of a machine is reachable through
// ordinary loads and stores.
package llc

import (
	"fmt"
	"math/bits"
)

// CacheGeometry describes a sliced last-level cache.
type CacheGeometry struct {
	// Slices is the number of LLC slices (usually one per core).
	Slices int
	// WaysPerSlice and SetsPerSlice give each slice's organization.
	WaysPerSlice int
	SetsPerSlice int
	// LineBytes is the cache line size.
	LineBytes int
}

// DefaultGeometry models an 8-slice, 16-way, 2.5MB/slice Xeon LLC (Chen et
// al., the L3 slice the paper cites as matching Sunder's subarrays).
func DefaultGeometry() CacheGeometry {
	return CacheGeometry{Slices: 8, WaysPerSlice: 16, SetsPerSlice: 2048, LineBytes: 64}
}

// SliceBytes returns one slice's capacity.
func (g CacheGeometry) SliceBytes() int { return g.WaysPerSlice * g.SetsPerSlice * g.LineBytes }

// Validate checks the geometry.
func (g CacheGeometry) Validate() error {
	for _, v := range []int{g.Slices, g.WaysPerSlice, g.SetsPerSlice, g.LineBytes} {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("llc: geometry values must be positive powers of two: %+v", g)
		}
	}
	return nil
}

// SliceHash is the complex-addressing function distributing physical
// addresses over slices: slice = XOR of selected physical address bits per
// output bit (Maurice et al.).
type SliceHash struct {
	// Masks[i] selects the physical-address bits XOR-folded into output
	// bit i.
	Masks []uint64
}

// DefaultHash returns a hash of the published Sandy Bridge form for up to
// 8 slices.
func DefaultHash(slices int) SliceHash {
	// Bit masks adapted from the reverse-engineered Intel functions:
	// each output bit XORs a distinct spread of address bits ≥ bit 6.
	all := []uint64{
		0x1b5f575440, // o0
		0x2eb5faa880, // o1
		0x3cccc93100, // o2
	}
	n := bits.Len(uint(slices - 1))
	return SliceHash{Masks: all[:n]}
}

// SliceOf returns the slice index of a physical address.
func (h SliceHash) SliceOf(pa uint64) int {
	s := 0
	for i, m := range h.Masks {
		if bits.OnesCount64(pa&m)%2 == 1 {
			s |= 1 << i
		}
	}
	return s
}

// PageMapper models the 1GB-page virtual→physical translation the host
// uses at configuration time (mmap + /proc/self/pagemap in Section 6): one
// huge page is physically contiguous, so PA = base + (VA - vbase).
type PageMapper struct {
	VBase uint64
	PBase uint64
	Size  uint64
}

// NewPageMapper returns a mapper for one huge page.
func NewPageMapper(vbase, pbase, size uint64) (*PageMapper, error) {
	if size == 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("llc: page size %#x not a power of two", size)
	}
	if vbase%size != 0 || pbase%size != 0 {
		return nil, fmt.Errorf("llc: page bases must be size-aligned")
	}
	return &PageMapper{VBase: vbase, PBase: pbase, Size: size}, nil
}

// Translate converts a virtual address within the page.
func (p *PageMapper) Translate(va uint64) (uint64, error) {
	if va < p.VBase || va >= p.VBase+p.Size {
		return 0, fmt.Errorf("llc: va %#x outside page [%#x, %#x)", va, p.VBase, p.VBase+p.Size)
	}
	return p.PBase + (va - p.VBase), nil
}

// CATMask is a Cache Allocation Technology way mask: bit w set means way w
// may be used by the configuring program.
type CATMask uint32

// Allows reports whether way w is permitted.
func (m CATMask) Allows(w int) bool { return m&(1<<uint(w)) != 0 }

// Ways returns the allowed way indices.
func (m CATMask) Ways(total int) []int {
	var out []int
	for w := 0; w < total; w++ {
		if m.Allows(w) {
			out = append(out, w)
		}
	}
	return out
}

// Mapper combines the pieces into the configuration-path model.
type Mapper struct {
	Geo  CacheGeometry
	Hash SliceHash
	Page *PageMapper
	CAT  CATMask
}

// NewMapper validates and assembles a Mapper.
func NewMapper(geo CacheGeometry, hash SliceHash, page *PageMapper, cat CATMask) (*Mapper, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if len(hash.Masks) < bits.Len(uint(geo.Slices-1)) {
		return nil, fmt.Errorf("llc: hash produces %d bits for %d slices", len(hash.Masks), geo.Slices)
	}
	if len(cat.Ways(geo.WaysPerSlice)) == 0 {
		return nil, fmt.Errorf("llc: CAT mask allows no ways")
	}
	return &Mapper{Geo: geo, Hash: hash, Page: page, CAT: cat}, nil
}

// Location is where a cache line lands.
type Location struct {
	Slice int
	Set   int
	// Way is not addressable by software; the CAT mask restricts the
	// candidate set and the model reports the first allowed way.
	Way int
}

// Locate maps a virtual address to its slice/set under the hash, assuming
// replacement lands it in the first CAT-allowed way.
func (m *Mapper) Locate(va uint64) (Location, error) {
	pa, err := m.Page.Translate(va)
	if err != nil {
		return Location{}, err
	}
	line := pa / uint64(m.Geo.LineBytes)
	return Location{
		Slice: m.Hash.SliceOf(pa),
		Set:   int(line % uint64(m.Geo.SetsPerSlice)),
		Way:   m.CAT.Ways(m.Geo.WaysPerSlice)[0],
	}, nil
}

// SliceAddresses scans the huge page and returns, for the target slice,
// one virtual address per cache set in ascending set order — the flat
// access sequence the host uses to write configuration rows into that
// slice. An error is returned if some set is never hit (the hash model
// would then be unusable for configuration).
func (m *Mapper) SliceAddresses(slice int) ([]uint64, error) {
	if slice < 0 || slice >= m.Geo.Slices {
		return nil, fmt.Errorf("llc: slice %d out of range", slice)
	}
	found := make([]uint64, m.Geo.SetsPerSlice)
	seen := make([]bool, m.Geo.SetsPerSlice)
	remaining := m.Geo.SetsPerSlice
	for off := uint64(0); off < m.Page.Size && remaining > 0; off += uint64(m.Geo.LineBytes) {
		va := m.Page.VBase + off
		loc, err := m.Locate(va)
		if err != nil {
			return nil, err
		}
		if loc.Slice != slice || seen[loc.Set] {
			continue
		}
		seen[loc.Set] = true
		found[loc.Set] = va
		remaining--
	}
	if remaining > 0 {
		return nil, fmt.Errorf("llc: %d sets of slice %d unreachable within the page", remaining, slice)
	}
	return found, nil
}

// RowsPerSubarray mirrors the Sunder subarray height: a 256×256-bit
// subarray holds 256 rows of 32 bytes; with 64-byte lines, one line covers
// two rows.
const subarrayRowBytes = 32

// ConfigurationPlan enumerates the (virtual address, subarray row) pairs
// used to write a machine's subarrays through the cache, exercising the
// full Section 6 path.
type ConfigurationPlan struct {
	Slice int
	// RowAddr[pu][row] is the virtual address whose cache line holds the
	// row's 32 bytes.
	RowAddr [][]uint64
}

// PlanConfiguration builds the write plan for numPUs subarrays of 256 rows
// in the given slice. Each cache set stores LineBytes/subarrayRowBytes
// rows.
func (m *Mapper) PlanConfiguration(slice, numPUs int) (*ConfigurationPlan, error) {
	addrs, err := m.SliceAddresses(slice)
	if err != nil {
		return nil, err
	}
	rowsPerLine := m.Geo.LineBytes / subarrayRowBytes
	rowsAvailable := len(addrs) * rowsPerLine * m.CATWays()
	need := numPUs * 256
	if need > rowsAvailable {
		return nil, fmt.Errorf("llc: %d PUs need %d rows; slice %d offers %d under the CAT mask",
			numPUs, need, slice, rowsAvailable)
	}
	plan := &ConfigurationPlan{Slice: slice, RowAddr: make([][]uint64, numPUs)}
	idx := 0
	for pu := 0; pu < numPUs; pu++ {
		plan.RowAddr[pu] = make([]uint64, 256)
		for r := 0; r < 256; r++ {
			plan.RowAddr[pu][r] = addrs[idx/rowsPerLine%len(addrs)]
			idx++
		}
	}
	return plan, nil
}

// CATWays returns the number of ways the CAT mask allows.
func (m *Mapper) CATWays() int { return len(m.CAT.Ways(m.Geo.WaysPerSlice)) }
