package llc

import "testing"

func defaultMapper(t *testing.T) *Mapper {
	t.Helper()
	geo := DefaultGeometry()
	page, err := NewPageMapper(0x40000000, 0x80000000, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(geo, DefaultHash(geo.Slices), page, CATMask(0x3))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SliceBytes() != 2*1024*1024 {
		t.Errorf("slice bytes = %d, want 2MiB", g.SliceBytes())
	}
	bad := g
	bad.Slices = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two slices accepted")
	}
}

func TestHashBalance(t *testing.T) {
	h := DefaultHash(8)
	counts := make([]int, 8)
	for pa := uint64(0); pa < 1<<22; pa += 64 {
		s := h.SliceOf(pa)
		if s < 0 || s >= 8 {
			t.Fatalf("slice %d out of range", s)
		}
		counts[s]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	for s, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.08 || frac > 0.17 {
			t.Errorf("slice %d holds %.3f of lines; hash unbalanced", s, frac)
		}
	}
}

func TestPageMapper(t *testing.T) {
	p, err := NewPageMapper(0x40000000, 0x80000000, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := p.Translate(0x40000040)
	if err != nil || pa != 0x80000040 {
		t.Errorf("translate = %#x, %v", pa, err)
	}
	if _, err := p.Translate(0x3fffffff); err == nil {
		t.Error("out-of-page VA accepted")
	}
	if _, err := NewPageMapper(0x1000, 0x2000, 3000); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := NewPageMapper(0x1234, 0x2000, 1<<30); err == nil {
		t.Error("unaligned base accepted")
	}
}

func TestCATMask(t *testing.T) {
	m := CATMask(0b1010)
	if m.Allows(0) || !m.Allows(1) || m.Allows(2) || !m.Allows(3) {
		t.Error("Allows wrong")
	}
	if got := m.Ways(16); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Ways = %v", got)
	}
}

func TestMapperValidation(t *testing.T) {
	geo := DefaultGeometry()
	page, _ := NewPageMapper(0, 0, 1<<30)
	if _, err := NewMapper(geo, SliceHash{Masks: []uint64{1}}, page, 1); err == nil {
		t.Error("insufficient hash bits accepted")
	}
	if _, err := NewMapper(geo, DefaultHash(8), page, 0); err == nil {
		t.Error("empty CAT mask accepted")
	}
}

func TestSliceAddressesCoverAllSets(t *testing.T) {
	m := defaultMapper(t)
	addrs, err := m.SliceAddresses(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != m.Geo.SetsPerSlice {
		t.Fatalf("addresses = %d, want %d", len(addrs), m.Geo.SetsPerSlice)
	}
	for set, va := range addrs {
		loc, err := m.Locate(va)
		if err != nil {
			t.Fatal(err)
		}
		if loc.Slice != 3 || loc.Set != set {
			t.Errorf("address %#x maps to slice %d set %d, want slice 3 set %d",
				va, loc.Slice, loc.Set, set)
		}
	}
}

func TestPlanConfiguration(t *testing.T) {
	m := defaultMapper(t)
	plan, err := m.PlanConfiguration(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.RowAddr) != 4 {
		t.Fatalf("PUs = %d", len(plan.RowAddr))
	}
	for pu := range plan.RowAddr {
		if len(plan.RowAddr[pu]) != 256 {
			t.Fatalf("rows = %d", len(plan.RowAddr[pu]))
		}
		for _, va := range plan.RowAddr[pu] {
			loc, err := m.Locate(va)
			if err != nil {
				t.Fatal(err)
			}
			if loc.Slice != 2 {
				t.Fatalf("config address %#x landed in slice %d", va, loc.Slice)
			}
			if !m.CAT.Allows(loc.Way) {
				t.Fatalf("way %d not allowed by CAT", loc.Way)
			}
		}
	}
}

func TestPlanConfigurationCapacity(t *testing.T) {
	m := defaultMapper(t)
	// 2 ways × 2048 sets × 2 rows/line = 8192 rows = 32 PUs max.
	if _, err := m.PlanConfiguration(0, 33); err == nil {
		t.Error("over-capacity plan accepted")
	}
	if _, err := m.PlanConfiguration(9, 1); err == nil {
		t.Error("bad slice accepted")
	}
}
