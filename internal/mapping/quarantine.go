package mapping

import (
	"fmt"
)

// Quarantine support: when the fault-recovery layer gives up on a defective
// PU, its states must move to healthy storage. Because the global switches
// only join the four PUs of a cluster, a state cannot leave its cluster
// without breaking edges — so quarantine relocates the failed PU's entire
// cluster onto a fresh spare cluster appended after the current PUs,
// preserving every state's intra-cluster offset and column. Intra-PU edges,
// cluster-local global-switch edges and report-column assignments all
// remain valid by construction, so the new placement can be fed straight
// back into core.Configure.

// Quarantine returns a new placement with every state of failedPU's cluster
// relocated onto a spare cluster, plus puMap translating each old PU index
// to its new one (identity outside the failed cluster). The original
// placement is not modified. The failed cluster's PUs remain allocated but
// empty — they must never be reused, which the caller enforces by tracking
// its quarantined set.
func Quarantine(p *Placement, failedPU int) (*Placement, []int, error) {
	if failedPU < 0 || failedPU >= p.NumPUs {
		return nil, nil, fmt.Errorf("mapping: quarantine PU %d out of range [0,%d)", failedPU, p.NumPUs)
	}
	base := ClusterOf(failedPU) * PUsPerCluster
	// The spare cluster starts at the next cluster boundary past the
	// current PU count.
	spareBase := ((p.NumPUs + PUsPerCluster - 1) / PUsPerCluster) * PUsPerCluster
	q := &Placement{
		ReportColumns: p.ReportColumns,
		NumPUs:        spareBase + PUsPerCluster,
		Of:            make([]Loc, len(p.Of)),
	}
	puMap := make([]int, p.NumPUs)
	for i := range puMap {
		puMap[i] = i
	}
	for k := 0; k < PUsPerCluster && base+k < p.NumPUs; k++ {
		puMap[base+k] = spareBase + k
	}
	for s, loc := range p.Of {
		q.Of[s] = Loc{PU: puMap[loc.PU], Col: loc.Col}
	}
	q.StateAt = make([][]int32, q.NumPUs)
	for pu := range q.StateAt {
		q.StateAt[pu] = make([]int32, StatesPerPU)
		for c := range q.StateAt[pu] {
			q.StateAt[pu][c] = -1
		}
	}
	for s, loc := range q.Of {
		q.StateAt[loc.PU][loc.Col] = int32(s)
	}
	return q, puMap, nil
}
