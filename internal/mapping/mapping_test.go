package mapping

import (
	"testing"

	"sunder/internal/automata"
	"sunder/internal/regex"
	"sunder/internal/transform"
)

func nibbleOf(t *testing.T, patterns []regex.Pattern, rate int) *automata.UnitAutomaton {
	t.Helper()
	a, err := regex.CompileSet(patterns)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := transform.ToRate(a, rate)
	if err != nil {
		t.Fatal(err)
	}
	return ua
}

func TestPlaceSmall(t *testing.T) {
	ua := nibbleOf(t, []regex.Pattern{{Expr: `abcd`, Code: 1}}, 1)
	p, err := Place(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPUs != 1 {
		t.Errorf("PUs = %d, want 1", p.NumPUs)
	}
	// Every report state must sit in the report columns.
	for s := range ua.States {
		loc := p.Of[s]
		isRep := len(ua.States[s].Reports) > 0
		inRegion := loc.Col >= StatesPerPU-p.ReportColumns
		if isRep != inRegion {
			t.Errorf("state %d report=%v but col=%d", s, isRep, loc.Col)
		}
		if p.StateAt[loc.PU][loc.Col] != int32(s) {
			t.Errorf("StateAt inverse broken for state %d", s)
		}
	}
}

func TestPlaceManyComponents(t *testing.T) {
	// 120 independent 16-state chains, built directly so minimization
	// cannot merge or connect them.
	ua := automata.NewUnitAutomaton(4, 1, 2)
	for i := 0; i < 120; i++ {
		var prev automata.StateID = -1
		for k := 0; k < 16; k++ {
			s := automata.UnitState{
				Match: [automata.MaxRate]automata.UnitSet{automata.UnitSet(1 << uint((i+k)%16))},
			}
			if k == 0 {
				s.Start = automata.StartAllInput
			}
			if k == 15 {
				s.Reports = []automata.Report{{Offset: 0, Code: int32(i), Origin: int32(i)}}
			}
			id := ua.AddState(s)
			if prev >= 0 {
				ua.States[prev].Succ = []automata.StateID{id}
			}
			prev = id
		}
	}
	ua.Normalize()
	p, err := Place(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	// 120 components × 16 nibble states; 12 report columns per PU cap
	// the packing at 12 components/PU → at least 10 PUs.
	if p.NumPUs < 10 {
		t.Errorf("PUs = %d, want >= 10 (report-column constrained)", p.NumPUs)
	}
	st := p.ComputeStats(ua)
	if st.CrossPUEdges != 0 {
		t.Errorf("small components should not cross PUs: %d edges", st.CrossPUEdges)
	}
	if st.ReportsPlaced != ua.NumReportStates() {
		t.Errorf("reports placed = %d, want %d", st.ReportsPlaced, ua.NumReportStates())
	}
}

func TestPlaceLargeComponentSpansCluster(t *testing.T) {
	// One connected pattern with > 256 nibble states.
	ua := nibbleOf(t, []regex.Pattern{{Expr: `abcdefghijklmnopqrstuvwxyz{4}`, Code: 1}}, 1)
	if ua.NumStates() <= StatesPerPU {
		// Lengthen until it spans.
		t.Skip("pattern too small to span")
	}
	p, err := Place(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	st := p.ComputeStats(ua)
	if st.CrossPUEdges == 0 {
		t.Error("large component placed without cross-PU edges")
	}
	// All cross-PU edges stay inside one cluster.
	for s := range ua.States {
		for _, succ := range ua.States[s].Succ {
			if ClusterOf(p.Of[s].PU) != ClusterOf(p.Of[succ].PU) {
				t.Fatalf("edge %d→%d crosses clusters", s, succ)
			}
		}
	}
}

func TestPlaceRejectsOversized(t *testing.T) {
	// A single chain of > 1024 states cannot fit a cluster.
	a := automata.NewUnitAutomaton(4, 1, 2)
	var prev automata.StateID = -1
	for i := 0; i < StatesPerCluster+10; i++ {
		s := automata.UnitState{Match: [automata.MaxRate]automata.UnitSet{1}}
		if i == 0 {
			s.Start = automata.StartAllInput
		}
		id := a.AddState(s)
		if prev >= 0 {
			a.States[prev].Succ = []automata.StateID{id}
		}
		prev = id
	}
	a.States[prev].Reports = []automata.Report{{Offset: 0, Code: 1}}
	if _, err := Place(a, 12); err == nil {
		t.Error("oversized component accepted")
	}
}

func TestPlaceRejectsBadBudget(t *testing.T) {
	ua := nibbleOf(t, []regex.Pattern{{Expr: `ab`, Code: 1}}, 1)
	if _, err := Place(ua, 0); err == nil {
		t.Error("zero report columns accepted")
	}
	if _, err := Place(ua, 500); err == nil {
		t.Error("huge report columns accepted")
	}
}

func TestPlaceTooManyReportsInComponent(t *testing.T) {
	// A single component with more report states than a cluster's
	// report budget (12 columns × 4 PUs = 48) must be rejected. Build it
	// directly: a hub fanning out to 60 distinct report states.
	ua := automata.NewUnitAutomaton(4, 1, 2)
	hub := ua.AddState(automata.UnitState{
		Match: [automata.MaxRate]automata.UnitSet{1},
		Start: automata.StartAllInput,
	})
	for i := 0; i < 60; i++ {
		rep := ua.AddState(automata.UnitState{
			Match:   [automata.MaxRate]automata.UnitSet{automata.UnitSet(1 << uint(i%16))},
			Reports: []automata.Report{{Offset: 0, Code: int32(i), Origin: int32(i)}},
		})
		ua.States[hub].Succ = append(ua.States[hub].Succ, rep)
	}
	ua.Normalize()
	if _, err := Place(ua, 12); err == nil {
		t.Error("component with 60 report states accepted with 12×4 budget")
	}
}
