// Package mapping places a transformed (nibble) automaton onto Sunder
// processing units: 256 states per PU, four PUs per cluster (1024 states)
// joined by global memory-mapped switches (Figure 4, Figure 7).
//
// Placement works on connected components: a component must fit within one
// cluster (the global switches only join the four PUs of a cluster), and
// reporting states must land in the last ReportColumns columns of their PU
// — the pre-defined reporting region of Figure 5 that makes single-cycle
// report detection possible.
package mapping

import (
	"fmt"
	"sort"

	"sunder/internal/automata"
)

// Geometry constants of the Sunder architecture.
const (
	// StatesPerPU is the column count of one state-matching subarray.
	StatesPerPU = 256
	// PUsPerCluster is the number of PUs joined by one set of global
	// switches.
	PUsPerCluster = 4
	// StatesPerCluster is the largest automaton component the
	// interconnect can host.
	StatesPerCluster = StatesPerPU * PUsPerCluster
)

// Loc is a state's physical location.
type Loc struct {
	// PU is the global processing-unit index.
	PU int
	// Col is the column within the PU's subarray (0..255).
	Col int
}

// Placement maps every automaton state to a location.
type Placement struct {
	// ReportColumns is the per-PU report-column budget m.
	ReportColumns int
	// NumPUs is the number of processing units used.
	NumPUs int
	// Of[s] is the location of state s.
	Of []Loc
	// StateAt inverts Of: StateAt[pu][col] is the state at a column, or
	// -1 when the column is unused.
	StateAt [][]int32
}

// ClusterOf returns the cluster index of a PU.
func ClusterOf(pu int) int { return pu / PUsPerCluster }

// AutoReportColumns returns a feasible per-PU report-column budget m for
// the automaton, as close to preferred as possible. Each connected
// component must fit one cluster, which bounds m from below (its report
// states need ⌈reports/4⌉ columns per PU) and from above (its plain states
// need the remaining columns). An error is returned when no m in
// [1, StatesPerPU/2] satisfies every component.
func AutoReportColumns(a *automata.UnitAutomaton, preferred int) (int, error) {
	mMin, mMax := 1, StatesPerPU/2
	for _, comp := range components(a) {
		reports := 0
		for _, s := range comp {
			if len(a.States[s].Reports) > 0 {
				reports++
			}
		}
		plains := len(comp) - reports
		lo := (reports + PUsPerCluster - 1) / PUsPerCluster
		hi := StatesPerPU - (plains+PUsPerCluster-1)/PUsPerCluster
		if lo > mMin {
			mMin = lo
		}
		if hi < mMax {
			mMax = hi
		}
	}
	if mMin > mMax {
		return 0, fmt.Errorf("mapping: no report-column budget fits every component (need >= %d, <= %d)", mMin, mMax)
	}
	m := preferred
	if m < mMin {
		m = mMin
	}
	if m > mMax {
		m = mMax
	}
	return m, nil
}

// Place assigns the states of a unit automaton to PUs. reportColumns is the
// per-PU budget of report states (the paper allocates 12 based on the 3.9%
// average report-state fraction). Components are packed first-fit in
// decreasing size; a component larger than a cluster or a PU with more
// report states than columns is an error.
func Place(a *automata.UnitAutomaton, reportColumns int) (*Placement, error) {
	if reportColumns < 1 || reportColumns > StatesPerPU {
		return nil, fmt.Errorf("mapping: report columns %d out of range [1,%d]", reportColumns, StatesPerPU)
	}
	comps := components(a)
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })

	p := &Placement{
		ReportColumns: reportColumns,
		Of:            make([]Loc, a.NumStates()),
	}
	// Open PUs track remaining plain and report column budgets.
	type puState struct {
		plainUsed  int // columns used from the front
		reportUsed int // columns used from the back
	}
	var pus []puState
	// A cluster is open while any of its PUs has room; components larger
	// than one PU get a fresh cluster.
	newPU := func() int {
		pus = append(pus, puState{})
		return len(pus) - 1
	}

	for _, comp := range comps {
		if len(comp) > StatesPerCluster {
			return nil, fmt.Errorf("mapping: component with %d states exceeds cluster capacity %d",
				len(comp), StatesPerCluster)
		}
		reports := 0
		for _, s := range comp {
			if len(a.States[s].Reports) > 0 {
				reports++
			}
		}
		if len(comp) <= StatesPerPU && reports <= reportColumns {
			// Small component: first PU with room for both budgets.
			target := -1
			for i := range pus {
				if pus[i].plainUsed+(len(comp)-reports) <= StatesPerPU-reportColumns &&
					pus[i].reportUsed+reports <= reportColumns {
					target = i
					break
				}
			}
			if target < 0 {
				target = newPU()
			}
			if err := placeInto(a, p, comp, target, &pus[target].plainUsed, &pus[target].reportUsed); err != nil {
				return nil, err
			}
			continue
		}
		// Large component: spread across a fresh cluster, PU by PU.
		if pad := len(pus) % PUsPerCluster; pad != 0 {
			for k := pad; k < PUsPerCluster; k++ {
				newPU()
			}
		}
		base := len(pus)
		for k := 0; k < PUsPerCluster; k++ {
			newPU()
		}
		// Split reporting and plain states separately so neither budget
		// is exhausted by an unlucky ordering.
		var reps, plains []automata.StateID
		for _, s := range comp {
			if len(a.States[s].Reports) > 0 {
				reps = append(reps, s)
			} else {
				plains = append(plains, s)
			}
		}
		if len(reps) > PUsPerCluster*reportColumns ||
			len(plains) > PUsPerCluster*(StatesPerPU-reportColumns) {
			return nil, fmt.Errorf("mapping: component with %d states (%d reporting) does not fit a cluster with %d report columns per PU",
				len(comp), reports, reportColumns)
		}
		ri, pi := 0, 0
		for k := 0; k < PUsPerCluster; k++ {
			pu := base + k
			var part []automata.StateID
			for c := 0; c < reportColumns && ri < len(reps); c++ {
				part = append(part, reps[ri])
				ri++
			}
			for c := 0; c < StatesPerPU-reportColumns && pi < len(plains); c++ {
				part = append(part, plains[pi])
				pi++
			}
			if err := placeInto(a, p, part, pu, &pus[pu].plainUsed, &pus[pu].reportUsed); err != nil {
				return nil, err
			}
		}
	}

	p.NumPUs = len(pus)
	if p.NumPUs == 0 {
		p.NumPUs = 1
	}
	p.StateAt = make([][]int32, p.NumPUs)
	for pu := range p.StateAt {
		p.StateAt[pu] = make([]int32, StatesPerPU)
		for c := range p.StateAt[pu] {
			p.StateAt[pu][c] = -1
		}
	}
	for s, loc := range p.Of {
		p.StateAt[loc.PU][loc.Col] = int32(s)
	}
	return p, nil
}

// placeInto assigns the component's states to columns of one PU: plain
// states from the front, reporting states into the report region at the
// back.
func placeInto(a *automata.UnitAutomaton, p *Placement, comp []automata.StateID, pu int, plainUsed, reportUsed *int) error {
	for _, s := range comp {
		if len(a.States[s].Reports) > 0 {
			if *reportUsed >= p.ReportColumns {
				return fmt.Errorf("mapping: PU %d exceeded %d report columns", pu, p.ReportColumns)
			}
			p.Of[s] = Loc{PU: pu, Col: StatesPerPU - p.ReportColumns + *reportUsed}
			*reportUsed++
		} else {
			if *plainUsed >= StatesPerPU-p.ReportColumns {
				return fmt.Errorf("mapping: PU %d overflowed plain columns", pu)
			}
			p.Of[s] = Loc{PU: pu, Col: *plainUsed}
			*plainUsed++
		}
	}
	return nil
}

// components returns the weakly connected components of the automaton, each
// as a sorted state list.
func components(a *automata.UnitAutomaton) [][]automata.StateID {
	n := a.NumStates()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for i := range a.States {
		for _, t := range a.States[i].Succ {
			union(i, int(t))
		}
	}
	groups := map[int][]automata.StateID{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], automata.StateID(i))
	}
	out := make([][]automata.StateID, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	// Deterministic order: by first state ID.
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Stats summarizes a placement for reporting.
type Stats struct {
	NumPUs        int
	NumClusters   int
	UsedColumns   int
	ReportsPlaced int
	// CrossPUEdges counts transitions that leave their source PU (these
	// route through the cluster's global switches).
	CrossPUEdges int
}

// ComputeStats returns placement statistics.
func (p *Placement) ComputeStats(a *automata.UnitAutomaton) Stats {
	st := Stats{
		NumPUs:      p.NumPUs,
		NumClusters: (p.NumPUs + PUsPerCluster - 1) / PUsPerCluster,
	}
	for s := range a.States {
		st.UsedColumns++
		if len(a.States[s].Reports) > 0 {
			st.ReportsPlaced++
		}
		for _, t := range a.States[s].Succ {
			if p.Of[s].PU != p.Of[t].PU {
				st.CrossPUEdges++
			}
		}
	}
	return st
}
