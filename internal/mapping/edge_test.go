package mapping

import (
	"testing"

	"sunder/internal/automata"
)

// chainUA builds a single-component chain of n nibble states where every
// reportEvery-th state reports (0 = only the last).
func chainUA(n int, reportEvery int) *automata.UnitAutomaton {
	a := automata.NewUnitAutomaton(4, 1, 2)
	a.States = make([]automata.UnitState, n)
	for i := range a.States {
		a.States[i].Match = [4]automata.UnitSet{automata.AllUnits(4)}
		if i == 0 {
			a.States[i].Start = automata.StartOfData
		}
		if i < n-1 {
			a.States[i].Succ = []automata.StateID{automata.StateID(i + 1)}
		}
		report := i == n-1
		if reportEvery > 0 && (i+1)%reportEvery == 0 {
			report = true
		}
		if report {
			a.States[i].Reports = []automata.Report{{Offset: 0, Code: 1, Origin: int32(i)}}
		}
	}
	a.Normalize()
	return a
}

// TestPlacePlainOverCapacity exercises the subarray over-capacity path a
// component can hit without exceeding the cluster's raw state count: 1000
// plain states fit 1024 cluster slots, but with m=12 only 4×244=976 plain
// columns exist, so placement must fail rather than spill the report
// region.
func TestPlacePlainOverCapacity(t *testing.T) {
	ua := chainUA(1000, 0)
	if _, err := Place(ua, 12); err == nil {
		t.Fatal("1000 plain states placed into 976 plain columns")
	}
	// The adaptive budget shrinks m to make the same component fit.
	m, err := AutoReportColumns(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(ua, m); err != nil {
		t.Fatalf("placement failed at the adaptive budget m=%d: %v", m, err)
	}
}

// TestPlaceReportOverCapacity is the dual: more report states than the
// cluster's report region can hold at any feasible budget.
func TestPlaceReportOverCapacity(t *testing.T) {
	// 600 report states in one component need 150 columns per PU, beyond
	// the StatesPerPU/2 cap AutoReportColumns enforces.
	ua := chainUA(600, 1)
	if _, err := AutoReportColumns(ua, 12); err == nil {
		t.Fatal("600-report component reported feasible")
	}
	if _, err := Place(ua, StatesPerPU/2); err == nil {
		t.Fatal("600-report component placed at the maximum budget")
	}
}

// TestPlaceZeroStates: an empty automaton is a degenerate but legal input
// (pruning can empty a machine whose patterns never match); placement must
// produce a consistent one-PU layout, not panic or divide by zero.
func TestPlaceZeroStates(t *testing.T) {
	ua := automata.NewUnitAutomaton(4, 1, 2)
	m, err := AutoReportColumns(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if m != 12 {
		t.Fatalf("empty automaton moved the preferred budget: m=%d", m)
	}
	p, err := Place(ua, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPUs != 1 || len(p.Of) != 0 {
		t.Fatalf("got %d PUs, %d locations; want 1 empty PU", p.NumPUs, len(p.Of))
	}
	for _, col := range p.StateAt[0] {
		if col != -1 {
			t.Fatal("empty placement has an occupied column")
		}
	}
	st := p.ComputeStats(ua)
	if st.UsedColumns != 0 || st.NumClusters != 1 {
		t.Fatalf("stats %+v, want 0 used columns in 1 cluster", st)
	}
}

// TestQuarantineRepeated relocates the same logical cluster twice —
// exhausting two spare clusters — and checks each hop preserves columns and
// leaves the failed cluster empty. The spare *budget* is enforced by the
// fault layer (faults.TestSpareExhaustion); here the mapping must stay
// self-consistent however many spares the caller grants.
func TestQuarantineRepeated(t *testing.T) {
	ua := chainUA(300, 0) // spans a full cluster (large-component path)
	p, err := Place(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPUs != PUsPerCluster {
		t.Fatalf("got %d PUs, want one full cluster", p.NumPUs)
	}

	q1, map1, err := Quarantine(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q1.NumPUs != 2*PUsPerCluster {
		t.Fatalf("first quarantine: %d PUs, want %d", q1.NumPUs, 2*PUsPerCluster)
	}
	// Quarantine the relocated cluster again: states move to a third.
	q2, map2, err := Quarantine(q1, map1[0])
	if err != nil {
		t.Fatal(err)
	}
	if q2.NumPUs != 3*PUsPerCluster {
		t.Fatalf("second quarantine: %d PUs, want %d", q2.NumPUs, 3*PUsPerCluster)
	}
	for s, loc0 := range p.Of {
		loc2 := q2.Of[s]
		if loc2.Col != loc0.Col {
			t.Fatalf("state %d changed column %d -> %d", s, loc0.Col, loc2.Col)
		}
		if want := map2[map1[loc0.PU]]; loc2.PU != want {
			t.Fatalf("state %d on PU %d, want %d", s, loc2.PU, want)
		}
	}
	// Both abandoned clusters are empty.
	for pu := 0; pu < 2*PUsPerCluster; pu++ {
		for _, col := range q2.StateAt[pu] {
			if col != -1 {
				t.Fatalf("abandoned PU %d still hosts state %d", pu, col)
			}
		}
	}
}

// TestQuarantineOutOfRange pins the error path.
func TestQuarantineOutOfRange(t *testing.T) {
	ua := chainUA(4, 0)
	p, err := Place(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Quarantine(p, p.NumPUs); err == nil {
		t.Fatal("quarantine of a PU past NumPUs succeeded")
	}
	if _, _, err := Quarantine(p, -1); err == nil {
		t.Fatal("quarantine of PU -1 succeeded")
	}
}
