package mapping

import (
	"testing"

	"sunder/internal/automata"
)

// manyChains builds n independent chains of length l with one report state
// each.
func manyChains(n, l int) *automata.UnitAutomaton {
	ua := automata.NewUnitAutomaton(4, 1, 2)
	for i := 0; i < n; i++ {
		var prev automata.StateID = -1
		for k := 0; k < l; k++ {
			s := automata.UnitState{Match: [automata.MaxRate]automata.UnitSet{1 << uint((i+k)%16)}}
			if k == 0 {
				s.Start = automata.StartAllInput
			}
			if k == l-1 {
				s.Reports = []automata.Report{{Offset: 0, Code: int32(i), Origin: int32(i)}}
			}
			id := ua.AddState(s)
			if prev >= 0 {
				ua.States[prev].Succ = []automata.StateID{id}
			}
			prev = id
		}
	}
	ua.Normalize()
	return ua
}

func TestAutoReportColumnsPrefersDefault(t *testing.T) {
	ua := manyChains(5, 8)
	m, err := AutoReportColumns(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if m != 12 {
		t.Errorf("m = %d, want preferred 12", m)
	}
}

func TestAutoReportColumnsRaises(t *testing.T) {
	// One component with many report states: hub fanning to 60 reports
	// needs m ≥ 15.
	ua := automata.NewUnitAutomaton(4, 1, 2)
	hub := ua.AddState(automata.UnitState{
		Match: [automata.MaxRate]automata.UnitSet{1},
		Start: automata.StartAllInput,
	})
	for i := 0; i < 60; i++ {
		rep := ua.AddState(automata.UnitState{
			Match:   [automata.MaxRate]automata.UnitSet{automata.UnitSet(1 << uint(i%16))},
			Reports: []automata.Report{{Offset: 0, Code: int32(i), Origin: int32(i)}},
		})
		ua.States[hub].Succ = append(ua.States[hub].Succ, rep)
	}
	ua.Normalize()
	m, err := AutoReportColumns(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if m != 15 {
		t.Errorf("m = %d, want 15 (= ceil(60/4))", m)
	}
	if _, err := Place(ua, m); err != nil {
		t.Errorf("Place with auto m failed: %v", err)
	}
}

func TestAutoReportColumnsLowers(t *testing.T) {
	// A plain-heavy component: 990 plain states + 20 reports force m ≤
	// 256 - ceil(990/4) = 8.
	ua := automata.NewUnitAutomaton(4, 1, 2)
	var prev automata.StateID = -1
	for k := 0; k < 1010; k++ {
		s := automata.UnitState{Match: [automata.MaxRate]automata.UnitSet{1 << uint(k%16)}}
		if k == 0 {
			s.Start = automata.StartAllInput
		}
		if k%50 == 49 { // 20 report states spread along the chain
			s.Reports = []automata.Report{{Offset: 0, Code: int32(k), Origin: int32(k)}}
		}
		id := ua.AddState(s)
		if prev >= 0 {
			ua.States[prev].Succ = []automata.StateID{id}
		}
		prev = id
	}
	ua.Normalize()
	m, err := AutoReportColumns(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	if m > 8 {
		t.Errorf("m = %d, want <= 8", m)
	}
	if _, err := Place(ua, m); err != nil {
		t.Errorf("Place with auto m failed: %v", err)
	}
}

func TestAutoReportColumnsInfeasible(t *testing.T) {
	ua := manyChains(1, StatesPerCluster+5)
	if _, err := AutoReportColumns(ua, 12); err == nil {
		t.Error("oversized component accepted")
	}
}

func TestDevicePlan(t *testing.T) {
	ua := manyChains(60, 8) // 60 components × 12 report budget → ≥ 5 PUs
	place, err := Place(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	dev := DefaultDevice()
	plan, err := dev.Plan(place)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds != 1 || plan.RequiredPUs != place.NumPUs {
		t.Errorf("plan = %+v", plan)
	}
	if plan.ReconfigureCycles != int64(place.NumPUs)*dev.ReconfigureCyclesPerPU {
		t.Errorf("reconfig cycles = %d", plan.ReconfigureCycles)
	}

	tiny := Device{PUs: 4, ReconfigureCyclesPerPU: 512}
	plan2, err := tiny.Plan(place)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := (place.NumPUs + 3) / 4
	if plan2.Rounds != wantRounds {
		t.Errorf("rounds = %d, want %d", plan2.Rounds, wantRounds)
	}
	f1 := plan.EffectiveThroughputFactor(100000)
	f2 := plan2.EffectiveThroughputFactor(100000)
	if !(f2 < f1 && f1 <= 1 && f2 > 0) {
		t.Errorf("throughput factors: fit=%v tiny=%v", f1, f2)
	}
	if (Device{PUs: 1}).PUs >= PUsPerCluster {
		t.Fatal("test setup wrong")
	}
	if _, err := (Device{PUs: 1}).Plan(place); err == nil {
		t.Error("sub-cluster device accepted")
	}
}

func TestClusterOf(t *testing.T) {
	if ClusterOf(0) != 0 || ClusterOf(3) != 0 || ClusterOf(4) != 1 || ClusterOf(9) != 2 {
		t.Error("ClusterOf wrong")
	}
}
