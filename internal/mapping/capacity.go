package mapping

import "fmt"

// Device capacity and reconfiguration-rounds model. Section 1 of the paper:
// "If device capacity is not enough for an application, either more
// hardware units or multiple rounds of reconfigurations are required."
// When a rule set needs more PUs than the device provides, the input is
// streamed once per configuration round, and each round pays a
// reconfiguration cost (writing the subarrays and switch tables through
// the Section 6 cache path).

// Device describes one Sunder device's capacity.
type Device struct {
	// PUs is the number of 256-state processing units (a repurposed LLC
	// slice of 2MB holds 32 match/report + 32 crossbar subarrays ⇒ 16
	// PUs per slice; a large Xeon LLC offers hundreds).
	PUs int
	// ReconfigureCyclesPerPU is the cost of writing one PU's match rows
	// and crossbar rows through the configuration path (512 row writes).
	ReconfigureCyclesPerPU int64
}

// DefaultDevice models eight repurposed 2MB LLC slices.
func DefaultDevice() Device {
	return Device{PUs: 128, ReconfigureCyclesPerPU: 512}
}

// ExecutionPlan describes how an application runs on a device.
type ExecutionPlan struct {
	// RequiredPUs is the placement's PU count.
	RequiredPUs int
	// Rounds is the number of configuration rounds (1 = fits).
	Rounds int
	// ReconfigureCycles is the total configuration cost across rounds.
	ReconfigureCycles int64
}

// Plan computes the execution plan for a placement on a device.
func (d Device) Plan(p *Placement) (ExecutionPlan, error) {
	if d.PUs < PUsPerCluster {
		return ExecutionPlan{}, fmt.Errorf("mapping: device must have at least one cluster (%d PUs)", PUsPerCluster)
	}
	rounds := (p.NumPUs + d.PUs - 1) / d.PUs
	if rounds < 1 {
		rounds = 1
	}
	return ExecutionPlan{
		RequiredPUs:       p.NumPUs,
		Rounds:            rounds,
		ReconfigureCycles: int64(minInt(p.NumPUs, rounds*d.PUs)) * d.ReconfigureCyclesPerPU,
	}, nil
}

// EffectiveThroughputFactor returns the throughput multiplier versus a
// device that fits the whole application: the input is streamed Rounds
// times, plus the amortized reconfiguration cost.
func (p ExecutionPlan) EffectiveThroughputFactor(inputCycles int64) float64 {
	if inputCycles <= 0 {
		return 1
	}
	total := int64(p.Rounds)*inputCycles + p.ReconfigureCycles
	return float64(inputCycles) / float64(total)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
