// Package cliutil holds the observability flag plumbing shared by the
// cmd/ binaries: runtime/pprof capture (-cpuprofile/-memprofile),
// device-telemetry emission (-metrics/-trace), and the -faults policy
// parser.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"sunder/internal/faults"
	"sunder/internal/telemetry"
)

// Profiles carries the -cpuprofile/-memprofile flag values.
type Profiles struct {
	CPU string
	Mem string
}

// ProfileFlags registers -cpuprofile and -memprofile on the default flag
// set. Call Start after flag.Parse.
func ProfileFlags() *Profiles {
	p := &Profiles{}
	flag.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling if requested and returns a function that
// finalizes both profiles; call it (or defer it) on the success path.
func (p *Profiles) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// TelemetryFlags carries the -metrics/-trace flag values.
type TelemetryFlags struct {
	Metrics bool
	Trace   string
}

// RegisterTelemetryFlags registers -metrics and -trace on the default
// flag set.
func RegisterTelemetryFlags() *TelemetryFlags {
	t := &TelemetryFlags{}
	flag.BoolVar(&t.Metrics, "metrics", false, "print device counters (per-PU and aggregate) after the run")
	flag.StringVar(&t.Trace, "trace", "", "write a Chrome trace_event JSON file of device events to this path")
	return t
}

// Enabled reports whether any telemetry output was requested.
func (t *TelemetryFlags) Enabled() bool { return t.Metrics || t.Trace != "" }

// Collector builds a collector matching the requested outputs, or nil if
// none were requested.
func (t *TelemetryFlags) Collector() *telemetry.Collector {
	if !t.Enabled() {
		return nil
	}
	col := telemetry.NewCollector()
	if t.Trace != "" {
		col.EnableTrace(0)
	}
	return col
}

// ParallelFlags carries the -par/-workers flag values for the sharded
// parallel scan path.
type ParallelFlags struct {
	// Par enables the parallel comparison / study.
	Par bool
	// Workers is the worker count; 0 selects GOMAXPROCS.
	Workers int
}

// RegisterParallelFlags registers -par and -workers on the default flag
// set.
func RegisterParallelFlags() *ParallelFlags {
	p := &ParallelFlags{}
	flag.BoolVar(&p.Par, "par", false, "run the sharded parallel scan path alongside the sequential one")
	flag.IntVar(&p.Workers, "workers", 0, "parallel scan worker count (0 = GOMAXPROCS)")
	return p
}

// Enabled reports whether parallel execution was requested, either
// explicitly (-par) or implicitly by naming a worker count.
func (p *ParallelFlags) Enabled() bool { return p.Par || p.Workers > 0 }

// EffectiveWorkers resolves the worker count, defaulting to GOMAXPROCS.
func (p *ParallelFlags) EffectiveWorkers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BackendFlags carries the -backend flag value: the software scan
// engine's execution substrate.
type BackendFlags struct {
	// Backend is "auto", "nfa", "dfa", "parallel", or "" for the tool's
	// default behaviour.
	Backend string
}

// RegisterBackendFlag registers -backend on the default flag set.
func RegisterBackendFlag() *BackendFlags {
	b := &BackendFlags{}
	flag.StringVar(&b.Backend, "backend", "",
		`software engine backend: "auto" (select from shape analysis), "nfa", "dfa" or "parallel" ("" = tool default)`)
	return b
}

// Enabled reports whether a backend was requested.
func (b *BackendFlags) Enabled() bool { return b.Backend != "" }

// Validate rejects unknown backend names. cliutil deliberately does not
// import the engine, so the known set is spelled here; the façade
// re-validates (and rejects unsupported forced "dfa") at compile time.
func (b *BackendFlags) Validate() error {
	switch b.Backend {
	case "", "auto", "nfa", "dfa", "parallel":
		return nil
	}
	return fmt.Errorf(`-backend: unknown backend %q (want "auto", "nfa", "dfa" or "parallel")`, b.Backend)
}

// AnalysisFlags carries the -lint/-prune/-minimize flag values for the
// static automaton analyzer.
type AnalysisFlags struct {
	// Lint runs the IR analyzer over the compiled automaton and prints
	// its report; error-severity findings make the tool exit non-zero.
	Lint bool
	// Prune removes dead states (unreachable, useless, never-matching,
	// subsumed) before placement.
	Prune bool
	// Minimize runs the certified ruleset minimizer (dead-state pruning,
	// bisimulation merging, cross-rule prefix collapse, symbol-class
	// compression) before placement; the equivalence certificate is
	// verified during compile.
	Minimize bool
}

// RegisterAnalysisFlags registers -lint, -prune and -minimize on the
// default flag set.
func RegisterAnalysisFlags() *AnalysisFlags {
	a := &AnalysisFlags{}
	flag.BoolVar(&a.Lint, "lint", false, "run the static IR analyzer on the compiled automaton and print its report")
	flag.BoolVar(&a.Prune, "prune", false, "prune dead automaton states (unreachable, useless, never-matching, subsumed) before placement")
	flag.BoolVar(&a.Minimize, "minimize", false, "run the certified ruleset minimizer (prune+bisimulation+prefix collapse) before placement, verifying its equivalence certificate")
	return a
}

// FaultFlags carries the -faults flag value: a fault-injection policy
// written as a comma-separated k=v list.
type FaultFlags struct {
	Spec string
}

// RegisterFaultFlags registers -faults on the default flag set.
func RegisterFaultFlags() *FaultFlags {
	f := &FaultFlags{}
	flag.StringVar(&f.Spec, "faults", "",
		`fault policy, e.g. "match=1e-5,report=1e-5,stuck=2,drop=0.001,seed=1,interval=256" `+
			`(keys: match/report/drop rates, stuck, seed, interval, retries, backoff, spares; "on" = detection only)`)
	return f
}

// Enabled reports whether a fault policy was requested.
func (f *FaultFlags) Enabled() bool { return f.Spec != "" }

// Policy parses the -faults value into a validated fault policy.
// Unspecified recovery parameters keep the package defaults; the literal
// "on" arms detection and recovery without injecting anything.
func (f *FaultFlags) Policy() (faults.Policy, error) {
	pol := faults.DefaultPolicy()
	if f.Spec == "on" {
		return pol, nil
	}
	for _, part := range strings.Split(f.Spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return pol, fmt.Errorf("-faults: %q is not key=value", part)
		}
		var err error
		switch k {
		case "match":
			pol.MatchFlipRate, err = strconv.ParseFloat(v, 64)
		case "report":
			pol.ReportFlipRate, err = strconv.ParseFloat(v, 64)
		case "drop":
			pol.DrainDropRate, err = strconv.ParseFloat(v, 64)
		case "stuck":
			pol.StuckXbarFaults, err = strconv.Atoi(v)
		case "seed":
			pol.Seed, err = strconv.ParseInt(v, 10, 64)
		case "interval":
			pol.CheckpointInterval, err = strconv.Atoi(v)
		case "retries":
			pol.MaxRetries, err = strconv.Atoi(v)
		case "backoff":
			pol.BackoffCycles, err = strconv.Atoi(v)
		case "spares":
			pol.SparePUs, err = strconv.Atoi(v)
		default:
			return pol, fmt.Errorf("-faults: unknown key %q (want match, report, drop, stuck, seed, interval, retries, backoff, spares)", k)
		}
		if err != nil {
			return pol, fmt.Errorf("-faults: %s: %w", k, err)
		}
	}
	if err := pol.Validate(); err != nil {
		return pol, fmt.Errorf("-faults: %w", err)
	}
	return pol, nil
}

// Emit writes the requested outputs: the metrics dump to w and the
// Chrome trace to the -trace path. A nil collector is a no-op.
func (t *TelemetryFlags) Emit(w io.Writer, col *telemetry.Collector) error {
	if col == nil {
		return nil
	}
	if t.Metrics {
		fmt.Fprintf(w, "\ndevice counters:\n")
		if err := col.WriteMetrics(w); err != nil {
			return err
		}
	}
	if t.Trace != "" {
		tr := col.Tracer()
		f, err := os.Create(t.Trace)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %d trace events to %s (%d dropped); load in chrome://tracing or Perfetto\n",
			len(tr.Events()), t.Trace, tr.Dropped())
	}
	return nil
}
