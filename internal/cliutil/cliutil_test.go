package cliutil

import (
	"runtime"
	"testing"
)

func TestParallelFlags(t *testing.T) {
	p := &ParallelFlags{}
	if p.Enabled() {
		t.Error("zero value enabled")
	}
	if got, want := p.EffectiveWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("EffectiveWorkers = %d, want GOMAXPROCS %d", got, want)
	}
	p = &ParallelFlags{Par: true}
	if !p.Enabled() {
		t.Error("-par not enabled")
	}
	p = &ParallelFlags{Workers: 3}
	if !p.Enabled() {
		t.Error("-workers 3 not enabled")
	}
	if got := p.EffectiveWorkers(); got != 3 {
		t.Errorf("EffectiveWorkers = %d, want 3", got)
	}
}

func TestBackendFlags(t *testing.T) {
	b := &BackendFlags{}
	if b.Enabled() {
		t.Error("zero value enabled")
	}
	if err := b.Validate(); err != nil {
		t.Errorf("empty backend: %v", err)
	}
	for _, name := range []string{"auto", "nfa", "dfa", "parallel"} {
		b = &BackendFlags{Backend: name}
		if !b.Enabled() {
			t.Errorf("-backend %s not enabled", name)
		}
		if err := b.Validate(); err != nil {
			t.Errorf("-backend %s: %v", name, err)
		}
	}
	b = &BackendFlags{Backend: "hybrid"}
	if err := b.Validate(); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestFaultFlagsPolicy(t *testing.T) {
	f := &FaultFlags{Spec: "match=1e-5,report=2e-5,stuck=2,drop=0.001,seed=9,interval=128,retries=5,backoff=32,spares=12"}
	if !f.Enabled() {
		t.Fatal("non-empty spec not enabled")
	}
	pol, err := f.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.MatchFlipRate != 1e-5 || pol.ReportFlipRate != 2e-5 || pol.DrainDropRate != 0.001 {
		t.Errorf("rates = %+v", pol)
	}
	if pol.StuckXbarFaults != 2 || pol.Seed != 9 || pol.CheckpointInterval != 128 {
		t.Errorf("ints = %+v", pol)
	}
	if pol.MaxRetries != 5 || pol.BackoffCycles != 32 || pol.SparePUs != 12 {
		t.Errorf("recovery = %+v", pol)
	}
}

func TestFaultFlagsDetectionOnly(t *testing.T) {
	f := &FaultFlags{Spec: "on"}
	pol, err := f.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.MatchFlipRate != 0 || pol.StuckXbarFaults != 0 || pol.CheckpointInterval != 256 {
		t.Errorf("detection-only policy = %+v", pol)
	}
	if (&FaultFlags{}).Enabled() {
		t.Error("empty spec enabled")
	}
}

func TestFaultFlagsPartialAndDefaults(t *testing.T) {
	f := &FaultFlags{Spec: "match=0.001, seed=3"} // spaces tolerated
	pol, err := f.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.MatchFlipRate != 0.001 || pol.Seed != 3 {
		t.Errorf("policy = %+v", pol)
	}
	if pol.CheckpointInterval != 256 || pol.MaxRetries != 3 || pol.SparePUs != 8 {
		t.Errorf("defaults not kept: %+v", pol)
	}
}

func TestFaultFlagsErrors(t *testing.T) {
	for _, spec := range []string{"match", "bogus=1", "match=x", "match=2"} {
		if _, err := (&FaultFlags{Spec: spec}).Policy(); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
