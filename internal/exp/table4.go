package exp

import (
	"io"

	"sunder/internal/automata"
	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/report"
	"sunder/internal/workload"
)

// Table4Row holds the reporting overheads of one benchmark under the four
// compared reporting architectures (Table 4): Sunder without and with the
// FIFO drain strategy (both at 4-nibble processing), and the AP and AP+RAD
// baselines (8-bit processing, as they are fixed-rate designs).
type Table4Row struct {
	Name string

	SunderFlushes      int64
	SunderOverhead     float64
	SunderFIFOFlushes  int64
	SunderFIFOOverhead float64
	APOverhead         float64
	RADOverhead        float64
	// ReportColumns is the per-PU report budget the placement needed
	// (12 unless the benchmark's transformed components carry more).
	ReportColumns int
	// PUs is the machine size at 4-nibble rate.
	PUs int
}

// Table4 measures reporting overheads for every benchmark.
func Table4(opts Options) ([]Table4Row, error) {
	var rows []Table4Row
	for _, spec := range workload.All() {
		w, err := workload.Get(spec.Name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Name: spec.Name}

		// Sunder at 4-nibble processing, w/o and w/ FIFO.
		units := funcsim.BytesToUnits(w.Input, 4)
		for _, fifo := range []bool{false, true} {
			cfg := core.DefaultConfig(4)
			cfg.FIFO = fifo
			m, err := buildMachineTel(w, 4, cfg, opts.Telemetry)
			if err != nil {
				return nil, err
			}
			res := m.Run(units, core.RunOptions{})
			if fifo {
				row.SunderFIFOFlushes = res.Flushes
				row.SunderFIFOOverhead = res.Overhead()
			} else {
				row.SunderFlushes = res.Flushes
				row.SunderOverhead = res.Overhead()
				row.ReportColumns = m.Config().ReportColumns
				row.PUs = m.NumPUs()
			}
		}

		// AP and AP+RAD driven by the byte-level report trace.
		p := report.DefaultParams()
		ap := report.NewAP(w.Automaton, p)
		rad := report.NewRAD(w.Automaton, p)
		sim := funcsim.NewByteSimulator(w.Automaton)
		res := sim.Run(w.Input, funcsim.Options{
			OnReportCycle: func(cycle int64, states []automata.StateID) {
				ap.OnReportCycle(cycle, states)
				rad.OnReportCycle(cycle, states)
			},
		})
		row.APOverhead = ap.Result().Overhead(res.Cycles)
		row.RADOverhead = rad.Result().Overhead(res.Cycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4Averages returns the mean overheads across benchmarks (the paper's
// Avg. Overhead row).
func Table4Averages(rows []Table4Row) (sunder, sunderFIFO, ap, rad float64) {
	for _, r := range rows {
		sunder += r.SunderOverhead
		sunderFIFO += r.SunderFIFOOverhead
		ap += r.APOverhead
		rad += r.RADOverhead
	}
	n := float64(len(rows))
	return sunder / n, sunderFIFO / n, ap / n, rad / n
}

// FprintTable4 renders the rows in the paper's layout.
func FprintTable4(w io.Writer, rows []Table4Row, opts Options) {
	fprintf(w, "Table 4: reporting overhead for four-nibble processing (scale=%.3g, input=%d bytes)\n",
		opts.Scale, opts.InputLen)
	fprintf(w, "%-18s | %9s %9s | %9s %9s | %9s | %9s | %4s %4s\n", "Benchmark",
		"#Flush", "w/o FIFO", "#Flush", "w/ FIFO", "AP", "AP+RAD", "m", "PUs")
	for _, r := range rows {
		fprintf(w, "%-18s | %9d %8.2fx | %9d %8.2fx | %8.2fx | %8.2fx | %4d %4d\n",
			r.Name, r.SunderFlushes, r.SunderOverhead,
			r.SunderFIFOFlushes, r.SunderFIFOOverhead,
			r.APOverhead, r.RADOverhead, r.ReportColumns, r.PUs)
	}
	s, sf, ap, rad := Table4Averages(rows)
	fprintf(w, "%-18s | %9s %8.2fx | %9s %8.2fx | %8.2fx | %8.2fx |\n",
		"Avg. Overhead", "", s, "", sf, ap, rad)
}
