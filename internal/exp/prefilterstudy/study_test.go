package prefilterstudy

import (
	"strings"
	"testing"

	"sunder/internal/exp"
)

func TestPrefilterStudy(t *testing.T) {
	opts := exp.DefaultOptions()
	opts.InputLen = 4000
	rows, err := PrefilterStudy(opts, []string{"ExactMatch", "Snort", "ClamAV"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if err := exp.CheckPrefilterStudy(rows, 0); err != nil {
		t.Fatal(err)
	}
	byName := map[string]exp.PrefilterRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["ExactMatch"]; !r.Engaged() || r.Literals == 0 || !r.FullSkip {
		t.Errorf("ExactMatch should engage and fully skip literal-free input: %+v", r)
	}
	if r := byName["Snort"]; r.Engaged() || !strings.HasPrefix(r.Strategy, "off") {
		t.Errorf("Snort should take the no-filter verdict: %+v", r)
	}
	var sb strings.Builder
	exp.FprintPrefilterStudy(&sb, rows)
	if !strings.Contains(sb.String(), "ExactMatch") {
		t.Errorf("table missing rows:\n%s", sb.String())
	}
}
