// Package prefilterstudy measures the literal-prefilter fast path through
// the public façade. It is separate from internal/exp because it imports
// the sunder package itself: exp must remain importable from the façade's
// in-package benchmarks (bench_test.go) without an import cycle, so the
// row type, printer and acceptance gate live in exp and only the runner
// lives here.
package prefilterstudy

import (
	"fmt"
	"time"

	"sunder"
	"sunder/internal/exp"
	"sunder/internal/workload"
)

// PrefilterStudy compiles every named benchmark twice — with and without
// Options.Prefilter — and measures both engines on the benchmark input and
// on a literal-free stream of equal length. Workloads whose rule sets
// yield no usable literal take the conservative verdict and appear with
// strategy "off (...)" and unit speedups; they are the pass-through rows.
func PrefilterStudy(opts exp.Options, names []string) ([]exp.PrefilterRow, error) {
	var rows []exp.PrefilterRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		base, err := sunder.CompileAutomaton(w.Automaton, sunder.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fopts := sunder.DefaultOptions()
		fopts.Prefilter = sunder.PrefilterOn
		filt, err := sunder.CompileAutomaton(w.Automaton, fopts)
		if err != nil {
			return nil, fmt.Errorf("%s (prefiltered): %w", name, err)
		}
		info := filt.Info()

		// Low byte values stay outside every benchmark's literal alphabet
		// (generated rule literals are printable), giving a no-match stream;
		// FullSkip below verifies rather than assumes this.
		quiet := make([]byte, len(w.Input))
		for i := range quiet {
			quiet[i] = byte(i % 4)
		}

		bm, bmNS, err := timeScan(base, w.Input)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fm, fmNS, err := timeScan(filt, w.Input)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		bq, bqNS, err := timeScan(base, quiet)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fq, fqNS, err := timeScan(filt, quiet)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}

		total := fm.Stats.KernelCycles + fm.Stats.SkippedCycles
		skippedPct := 0.0
		if total > 0 {
			skippedPct = 100 * float64(fm.Stats.SkippedCycles) / float64(total)
		}
		rows = append(rows, exp.PrefilterRow{
			Name:           name,
			Strategy:       info.PrefilterStrategy,
			Literals:       len(info.PrefilterLiterals),
			BaseMatchNS:    bmNS,
			FiltMatchNS:    fmNS,
			MatchSpeedup:   ratio(bmNS, fmNS),
			SkippedPct:     skippedPct,
			BaseNoMatchNS:  bqNS,
			FiltNoMatchNS:  fqNS,
			NoMatchSpeedup: ratio(bqNS, fqNS),
			FullSkip:       fq.Stats.KernelCycles == 0 && fq.Stats.SkippedCycles > 0,
			OutputOK: sameScan(bm, fm) && sameScan(bq, fq) &&
				fm.Stats.KernelCycles+fm.Stats.SkippedCycles == bm.Stats.KernelCycles,
		})
	}
	return rows, nil
}

// timeScan runs the scan three times and returns the last result with the
// fastest wall time, so one-off warm-up noise does not distort a ratio.
func timeScan(e *sunder.Engine, input []byte) (*sunder.ScanResult, int64, error) {
	var res *sunder.ScanResult
	best := int64(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		r, err := e.Scan(input)
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, 0, err
		}
		res = r
		if best == 0 || ns < best {
			best = ns
		}
	}
	return res, best, nil
}

func sameScan(a, b *sunder.ScanResult) bool {
	if a.Stats.Reports != b.Stats.Reports || a.Stats.ReportCycles != b.Stats.ReportCycles {
		return false
	}
	if len(a.Matches) != len(b.Matches) {
		return false
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return false
		}
	}
	return true
}

func ratio(base, filt int64) float64 {
	if filt <= 0 {
		return 0
	}
	return float64(base) / float64(filt)
}
