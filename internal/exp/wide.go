package exp

import (
	"io"
	"math/rand"

	"sunder/internal/automata"
	"sunder/internal/bitvec"
	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/mapping"
	"sunder/internal/transform"
)

// WideStudyRow compares 16-bit-alphabet pattern matching (one symbol per
// cycle at Sunder's 16-bit rate) against encoding the same items as byte
// pairs — the alphabet-size flexibility Section 2.3 motivates with data
// mining ("millions of unique symbols").
type WideStudyRow struct {
	Patterns        int
	ItemsPerPattern int

	// Wide path: 16-bit automaton → nibble trie → 16-bit rate.
	WideDeviceStates int
	WidePUs          int
	WideReports      int64
	// Byte path: the same patterns over 2-byte item encodings.
	ByteDeviceStates int
	BytePUs          int
	ByteReports      int64
	// SymbolsPerCycle for each (wide consumes a whole item per cycle;
	// the byte path needs two).
	WideSymbolsPerCycle float64
	ByteSymbolsPerCycle float64
}

// WideStudy builds an SPM-like subsequence rule set over a 16-bit item
// alphabet both ways and runs both machines on the same transaction
// stream.
func WideStudy(patterns, itemsPerPattern, inputSymbols int) (*WideStudyRow, error) {
	rng := rand.New(rand.NewSource(17))
	universe := make([]uint16, 64)
	for i := range universe {
		universe[i] = uint16(0x4000 + rng.Intn(1<<14)) // sparse large-alphabet items
	}
	const trigger uint16 = 0x3B3B // ';' pair, the transaction end

	// Wide automaton: item .* item .* trigger, directly over symbols.
	wa := automata.NewWideAutomaton()
	for p := 0; p < patterns; p++ {
		var prevItem, prevAny automata.StateID = -1, -1
		for k := 0; k < itemsPerPattern; k++ {
			item := wa.AddState(automata.WideState{
				Match: []uint16{universe[rng.Intn(len(universe))]},
				Start: startIf(k == 0),
			})
			if prevItem >= 0 {
				wa.AddEdge(prevItem, item)
				wa.AddEdge(prevAny, item)
			}
			any := wa.AddState(automata.WideState{Match: allItems(universe, trigger)})
			wa.AddEdge(item, any)
			wa.AddEdge(any, any)
			prevItem, prevAny = item, any
		}
		t := wa.AddState(automata.WideState{Match: []uint16{trigger}, Report: true, ReportCode: int32(p + 1)})
		wa.AddEdge(prevItem, t)
		wa.AddEdge(prevAny, t)
	}
	wa.Normalize()

	// Input: random items with periodic triggers.
	symbols := make([]uint16, inputSymbols)
	for i := range symbols {
		if i%29 == 28 {
			symbols[i] = trigger
		} else {
			symbols[i] = universe[rng.Intn(len(universe))]
		}
	}

	row := &WideStudyRow{Patterns: patterns, ItemsPerPattern: itemsPerPattern}

	// Wide path.
	wua, err := transform.WideToRate(wa, 4)
	if err != nil {
		return nil, err
	}
	wm, err := configureUnit(wua)
	if err != nil {
		return nil, err
	}
	wres := wm.Run(funcsim.SymbolsToUnits(symbols), core.RunOptions{})
	row.WideDeviceStates = wua.NumStates()
	row.WidePUs = wm.NumPUs()
	row.WideReports = wres.Reports
	row.WideSymbolsPerCycle = float64(inputSymbols) / float64(wres.KernelCycles)

	// Byte path: encode items as 2-byte big-endian values (every wide
	// state becomes a hi-byte state feeding a lo-byte state) and run at
	// the fixed 8-bit rate of CA/AP-class engines — the baseline the
	// paper's alphabet-flexibility argument targets: a 16-bit symbol
	// then costs two cycles.
	ba := byteVersionOf(wa)
	bua, err := transform.ToRate(ba, 2)
	if err != nil {
		return nil, err
	}
	bm, err := configureUnit(bua)
	if err != nil {
		return nil, err
	}
	bytesIn := make([]byte, 0, inputSymbols*2)
	for _, s := range symbols {
		bytesIn = append(bytesIn, byte(s>>8), byte(s))
	}
	bres := bm.Run(funcsim.BytesToUnits(bytesIn, 4), core.RunOptions{})
	row.ByteDeviceStates = bua.NumStates()
	row.BytePUs = bm.NumPUs()
	row.ByteReports = bres.Reports
	row.ByteSymbolsPerCycle = float64(inputSymbols) / float64(bres.KernelCycles)
	return row, nil
}

func startIf(b bool) automata.StartKind {
	if b {
		return automata.StartAllInput
	}
	return automata.StartNone
}

func allItems(universe []uint16, trigger uint16) []uint16 {
	out := append([]uint16(nil), universe...)
	return append(out, trigger)
}

// byteVersionOf rebuilds a wide automaton over 2-byte encodings: each wide
// state becomes a hi-byte state feeding a lo-byte state.
func byteVersionOf(wa *automata.WideAutomaton) *automata.Automaton {
	ba := automata.NewAutomaton()
	hi := make([]automata.StateID, wa.NumStates())
	lo := make([]automata.StateID, wa.NumStates())
	for i := range wa.States {
		ws := &wa.States[i]
		var hiSet, loSet bitvec.V256
		for _, sym := range ws.Match {
			hiSet.Set(int(sym >> 8))
			loSet.Set(int(sym & 0xff))
		}
		hi[i] = ba.AddState(automata.State{Match: hiSet, Start: ws.Start})
		lo[i] = ba.AddState(automata.State{Match: loSet, Report: ws.Report, ReportCode: ws.ReportCode})
		ba.AddEdge(hi[i], lo[i])
	}
	for i := range wa.States {
		for _, t := range wa.States[i].Succ {
			ba.AddEdge(lo[i], hi[t])
		}
	}
	ba.Normalize()
	return ba
}

// configureUnit places and configures a transformed automaton on a machine.
func configureUnit(ua *automata.UnitAutomaton) (*core.Machine, error) {
	budget, err := mapping.AutoReportColumns(ua, 12)
	if err != nil {
		return nil, err
	}
	place, err := mapping.Place(ua, budget)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(ua.Rate)
	cfg.ReportColumns = budget
	cfg.FIFO = true
	return core.Configure(ua, place, cfg)
}

// FprintWideStudy renders the comparison.
func FprintWideStudy(w io.Writer, r *WideStudyRow) {
	fprintf(w, "Extension: 16-bit symbol alphabets (SPM-like, %d patterns x %d items)\n",
		r.Patterns, r.ItemsPerPattern)
	fprintf(w, "%-22s %14s %6s %10s %14s\n", "encoding", "device states", "PUs", "reports", "symbols/cycle")
	fprintf(w, "%-22s %14d %6d %10d %14.2f\n", "16-bit (wide nibble)", r.WideDeviceStates, r.WidePUs, r.WideReports, r.WideSymbolsPerCycle)
	fprintf(w, "%-22s %14d %6d %10d %14.2f\n", "byte pairs", r.ByteDeviceStates, r.BytePUs, r.ByteReports, r.ByteSymbolsPerCycle)
}
