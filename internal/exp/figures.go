package exp

import (
	"io"

	"sunder/internal/automata"
	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/hardware"
	"sunder/internal/mapping"
)

// Figure8Row is one bar group of Figure 8: an architecture's throughput
// under AP-style reporting and under AP+RAD reporting, plus Sunder's
// advantage over it.
type Figure8Row struct {
	Arch             hardware.Arch
	ThroughputAP     float64 // Gbit/s assuming AP-style reporting overhead
	ThroughputRAD    float64 // Gbit/s assuming AP+RAD reporting overhead
	SunderSpeedupAP  float64
	SunderSpeedupRAD float64
}

// Figure8 computes throughput from the Table 5 frequencies and the average
// reporting overheads measured in Table 4. Sunder uses its own (measured)
// overhead; the others are charged the AP-style or RAD overhead, exactly as
// in Section 7.4.
func Figure8(t4 []Table4Row) []Figure8Row {
	sunderOv, _, apOv, radOv := Table4Averages(t4)
	sunder := hardware.Throughput(hardware.ArchSunder, sunderOv)
	var rows []Figure8Row
	for _, a := range []hardware.Arch{hardware.ArchSunder, hardware.ArchImpala, hardware.ArchCA, hardware.ArchAP14, hardware.ArchAP50} {
		var r Figure8Row
		r.Arch = a
		if a == hardware.ArchSunder {
			r.ThroughputAP = sunder
			r.ThroughputRAD = sunder
		} else {
			r.ThroughputAP = hardware.Throughput(a, apOv)
			r.ThroughputRAD = hardware.Throughput(a, radOv)
		}
		r.SunderSpeedupAP = sunder / r.ThroughputAP
		r.SunderSpeedupRAD = sunder / r.ThroughputRAD
		rows = append(rows, r)
	}
	return rows
}

// FprintFigure8 renders the figure data.
func FprintFigure8(w io.Writer, rows []Figure8Row) {
	fprintf(w, "Figure 8: throughput of automata accelerators (Gbit/s)\n")
	fprintf(w, "%-12s %14s %14s %12s %12s\n", "Architecture",
		"AP-reporting", "RAD-reporting", "Sunder/AP", "Sunder/RAD")
	for _, r := range rows {
		fprintf(w, "%-12s %11.2f    %11.2f    %9.1fx %11.1fx\n",
			r.Arch, r.ThroughputAP, r.ThroughputRAD, r.SunderSpeedupAP, r.SunderSpeedupRAD)
	}
}

// Figure9Row is one stacked bar of Figure 9.
type Figure9Row struct {
	Breakdown hardware.AreaBreakdown
	VsSunder  float64
}

// Figure9 computes the 32K-STE area comparison.
func Figure9() []Figure9Row {
	const states = 32 * 1024
	sunder := hardware.AreaFor(hardware.ArchSunder, states).Total()
	var rows []Figure9Row
	for _, a := range []hardware.Arch{hardware.ArchSunder, hardware.ArchCA, hardware.ArchImpala, hardware.ArchAP14} {
		b := hardware.AreaFor(a, states)
		rows = append(rows, Figure9Row{Breakdown: b, VsSunder: b.Total() / sunder})
	}
	return rows
}

// FprintFigure9 renders the figure data.
func FprintFigure9(w io.Writer, rows []Figure9Row) {
	fprintf(w, "Figure 9: area for 32K STEs (mm^2)\n")
	fprintf(w, "%-12s %10s %12s %10s %10s %10s\n", "Architecture",
		"Match", "Interconnect", "Reporting", "Total", "vs Sunder")
	for _, r := range rows {
		b := r.Breakdown
		fprintf(w, "%-12s %10.3f %12.3f %10.3f %10.3f %9.2fx\n",
			b.Arch, b.Match/1e6, b.Interconnect/1e6, b.Reporting/1e6, b.Total()/1e6, r.VsSunder)
	}
}

// Figure10Point is one x-position of Figure 10: the slowdown at a given
// report-cycle percentage under three reporting strategies.
type Figure10Point struct {
	ReportCyclePct    int
	NoSummarization   float64 // w/o FIFO, flush on full
	WithSummarization float64 // summarize in 16-row batches on full
	WithFIFO          float64 // FIFO drain
}

// Figure10 sweeps the input's report-cycle percentage from 1% to 100% on a
// machine whose single subarray hosts 12 reporting states, as in the
// paper's sensitivity analysis (Section 7.5).
func Figure10(inputLen int) ([]Figure10Point, error) {
	// 12 independent single-state report patterns, all matching the
	// trigger byte 'R' — every trigger cycle generates a 12-report burst
	// in one subarray.
	ua := automata.NewUnitAutomaton(4, 4, 2)
	for i := 0; i < 12; i++ {
		ua.AddState(automata.UnitState{
			Match: [automata.MaxRate]automata.UnitSet{
				1 << ('R' >> 4), 1 << ('R' & 0xf),
				automata.AllUnits(4), automata.AllUnits(4),
			},
			Start:   automata.StartAllInput,
			Reports: []automata.Report{{Offset: 1, Code: int32(i), Origin: int32(i)}},
		})
	}
	ua.Normalize()
	// The twelve states differ only in report code, so minimization is
	// deliberately skipped: the sweep models 12 occupied report columns.

	var points []Figure10Point
	for _, pct := range []int{1, 2, 5, 10, 20, 50, 75, 100} {
		input := make([]byte, inputLen)
		for i := range input {
			input[i] = 'x'
		}
		// Deterministic spread: a cycle covers 2 bytes at rate 4; make
		// pct% of cycles carry the trigger at their first byte.
		cycles := inputLen / 2
		hits := cycles * pct / 100
		if hits < 1 {
			hits = 1
		}
		stride := cycles / hits
		for k := 0; k < hits; k++ {
			pos := k * stride * 2
			if pos < inputLen {
				input[pos] = 'R'
			}
		}
		pt := Figure10Point{ReportCyclePct: pct}
		for mode := 0; mode < 3; mode++ {
			cfg := core.DefaultConfig(4)
			cfg.SummarizeOnFull = mode == 1
			cfg.FIFO = mode == 2
			place, err := mapping.Place(ua, cfg.ReportColumns)
			if err != nil {
				return nil, err
			}
			m, err := core.Configure(ua, place, cfg)
			if err != nil {
				return nil, err
			}
			res := m.Run(funcsim.BytesToUnits(input, 4), core.RunOptions{})
			switch mode {
			case 0:
				pt.NoSummarization = res.Overhead()
			case 1:
				pt.WithSummarization = res.Overhead()
			case 2:
				pt.WithFIFO = res.Overhead()
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// FprintFigure10 renders the sweep.
func FprintFigure10(w io.Writer, pts []Figure10Point, inputLen int) {
	fprintf(w, "Figure 10: slowdown vs reporting-cycle percentage (12 report states/subarray, input=%d bytes)\n", inputLen)
	fprintf(w, "%8s %16s %18s %12s\n", "RC%", "no summarize", "with summarize", "with FIFO")
	for _, p := range pts {
		fprintf(w, "%7d%% %15.3fx %17.3fx %11.3fx\n",
			p.ReportCyclePct, p.NoSummarization, p.WithSummarization, p.WithFIFO)
	}
}
