package exp

import (
	"io"

	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/hardware"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

// Ablation studies for the design choices DESIGN.md calls out. Each
// returns measured numbers so regressions in a design decision show up as
// changed output, and each has a bench_test.go entry.

// RateAblationRow quantifies the throughput-vs-density trade-off of the
// reconfigurable processing rate (Section 5.1.1) for one benchmark.
type RateAblationRow struct {
	Name string
	// Per rate index (1, 2, 4 nibbles):
	States     [3]int
	PUs        [3]int
	GbpsPerPU  [3]float64 // device throughput ÷ PUs: the density-adjusted figure of merit
	Throughput [3]float64 // Gbit/s at the Sunder operating frequency
}

// AblationRate measures the trade-off on a subset of benchmarks.
func AblationRate(opts Options, names []string) ([]RateAblationRow, error) {
	freq := hardware.PipelineFor(hardware.ArchSunder).OperatingFreqGHz()
	var rows []RateAblationRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, 64)
		if err != nil {
			return nil, err
		}
		row := RateAblationRow{Name: name}
		for i, rate := range table3Rates {
			m, err := buildMachineTel(w, rate, core.DefaultConfig(rate), opts.Telemetry)
			if err != nil {
				return nil, err
			}
			ua, err := transform.ToRate(w.Automaton, rate)
			if err != nil {
				return nil, err
			}
			row.States[i] = ua.NumStates()
			row.PUs[i] = m.NumPUs()
			row.Throughput[i] = freq * float64(4*rate)
			row.GbpsPerPU[i] = row.Throughput[i] / float64(m.NumPUs())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintAblationRate renders the trade-off.
func FprintAblationRate(w io.Writer, rows []RateAblationRow) {
	fprintf(w, "Ablation: processing rate vs density (Sunder @ %.1f GHz)\n",
		hardware.PipelineFor(hardware.ArchSunder).OperatingFreqGHz())
	fprintf(w, "%-18s | %19s | %13s | %22s\n", "Benchmark", "states (4/8/16-bit)", "PUs", "Gbps/PU")
	for _, r := range rows {
		fprintf(w, "%-18s | %5d %6d %6d | %3d %4d %4d | %6.2f %7.2f %7.2f\n",
			r.Name, r.States[0], r.States[1], r.States[2],
			r.PUs[0], r.PUs[1], r.PUs[2],
			r.GbpsPerPU[0], r.GbpsPerPU[1], r.GbpsPerPU[2])
	}
}

// ReportWidthAblation measures how the per-entry report width m trades
// region capacity against flush frequency on a dense workload.
type ReportWidthAblation struct {
	ReportColumns  int
	RegionCapacity int
	Flushes        int64
	Overhead       float64
}

// AblationReportWidth sweeps m on the Snort workload (reporting nearly
// every cycle, so the region-fill rate tracks capacity directly).
func AblationReportWidth(opts Options, widths []int) ([]ReportWidthAblation, error) {
	w, err := workload.Get("Snort", opts.Scale, opts.InputLen)
	if err != nil {
		return nil, err
	}
	units := funcsim.BytesToUnits(w.Input, 4)
	var rows []ReportWidthAblation
	for _, m := range widths {
		cfg := core.DefaultConfig(4)
		cfg.ReportColumns = m
		mach, err := buildMachineTel(w, 4, cfg, opts.Telemetry)
		if err != nil {
			return nil, err
		}
		res := mach.Run(units, core.RunOptions{})
		rows = append(rows, ReportWidthAblation{
			ReportColumns:  mach.Config().ReportColumns,
			RegionCapacity: mach.Config().RegionCapacity(),
			Flushes:        res.Flushes,
			Overhead:       res.Overhead(),
		})
	}
	return rows, nil
}

// FprintAblationReportWidth renders the sweep.
func FprintAblationReportWidth(w io.Writer, rows []ReportWidthAblation) {
	fprintf(w, "Ablation: report width m vs region capacity and flushes (Snort, 16-bit)\n")
	fprintf(w, "%6s %10s %10s %10s\n", "m", "capacity", "flushes", "overhead")
	for _, r := range rows {
		fprintf(w, "%6d %10d %10d %9.3fx\n", r.ReportColumns, r.RegionCapacity, r.Flushes, r.Overhead)
	}
}

// CoverAblation compares the grouped-row product cover against the naive
// per-symbol cover in the nibble transformation.
type CoverAblation struct {
	Name          string
	ByteStates    int
	GroupedStates int
	NaiveStates   int
	Saving        float64 // naive/grouped
}

// AblationCover measures the cover choice across benchmarks. The raw
// (pre-minimization) counts are compared: the minimizer's union-merge pass
// can largely reconstruct the grouping afterwards, so the cover's value is
// in producing the compact form directly.
func AblationCover(opts Options, names []string) ([]CoverAblation, error) {
	var rows []CoverAblation
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, 64)
		if err != nil {
			return nil, err
		}
		grouped := transform.ToNibble(w.Automaton)
		naive := transform.ToNibbleNaive(w.Automaton)
		rows = append(rows, CoverAblation{
			Name:          name,
			ByteStates:    w.Automaton.NumStates(),
			GroupedStates: grouped.NumStates(),
			NaiveStates:   naive.NumStates(),
			Saving:        float64(naive.NumStates()) / float64(grouped.NumStates()),
		})
	}
	return rows, nil
}

// FprintAblationCover renders the comparison.
func FprintAblationCover(w io.Writer, rows []CoverAblation) {
	fprintf(w, "Ablation: grouped-row vs per-symbol product cover (1-nibble states)\n")
	fprintf(w, "%-18s %8s %9s %8s %8s\n", "Benchmark", "8-bit", "grouped", "naive", "saving")
	for _, r := range rows {
		fprintf(w, "%-18s %8d %9d %8d %7.2fx\n", r.Name, r.ByteStates, r.GroupedStates, r.NaiveStates, r.Saving)
	}
}
