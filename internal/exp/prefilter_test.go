package exp

import (
	"strings"
	"testing"
)

func TestCheckPrefilterStudyGates(t *testing.T) {
	bad := []PrefilterRow{{Name: "x", Strategy: "swar", OutputOK: false}}
	if err := CheckPrefilterStudy(bad, 0); err == nil {
		t.Error("diverged output must fail the check")
	}
	slow := []PrefilterRow{{Name: "y", Strategy: "swar", OutputOK: true, FullSkip: true, NoMatchSpeedup: 1.2}}
	if err := CheckPrefilterStudy(slow, 5); err == nil {
		t.Error("sub-threshold speedup must fail the check")
	}
	if err := CheckPrefilterStudy(slow, 0); err != nil {
		t.Errorf("no threshold set: %v", err)
	}
	if !slow[0].Engaged() {
		t.Error("swar row must report engaged")
	}
	off := PrefilterRow{Strategy: "off (no usable literal)"}
	if off.Engaged() {
		t.Error("off row must not report engaged")
	}
	var sb strings.Builder
	FprintPrefilterStudy(&sb, append(bad, off))
	if !strings.Contains(sb.String(), "DIVERGED") {
		t.Errorf("table must flag diverged rows:\n%s", sb.String())
	}
}
