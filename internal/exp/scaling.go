package exp

import (
	"io"
	"time"

	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/sched"
	"sunder/internal/workload"
)

// ScalingRow measures the sharded parallel runner against the sequential
// simulator for one benchmark at one worker count. The simulator is the
// measured system here — wall-clock simulation throughput, not modeled
// device throughput — so this study quantifies how far the overlap-window
// sharding scales the *host-side* simulation.
type ScalingRow struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// Sharded is false when the dependence window is unbounded (cyclic
	// automaton) and the run degenerated to sequential execution.
	Sharded bool  `json:"sharded"`
	SeqNS   int64 `json:"seq_ns"`
	ParNS   int64 `json:"par_ns"`
	// Speedup is SeqNS/ParNS; MBps the parallel simulation throughput over
	// the input bytes.
	Speedup float64 `json:"speedup"`
	MBps    float64 `json:"mbps"`
	// OutputOK asserts the parallel run reproduced the sequential report
	// statistics exactly (reports, report cycles, per-cycle max, cycles).
	OutputOK bool `json:"output_ok"`
}

// ScalingStudy times ScanParallel-equivalent runs across worker counts.
// Each benchmark's sequential reference is measured once on a fresh clone;
// every (benchmark, workers) pair then runs the sharded path on clones of
// the same pristine machine.
func ScalingStudy(opts Options, names []string, workers []int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		proto, ua, err := buildMachineUA(w, 4, core.DefaultConfig(4), nil)
		if err != nil {
			return nil, err
		}
		units := funcsim.PadUnits(funcsim.BytesToUnits(w.Input, 4), 4)

		seqM := proto.Clone()
		t0 := time.Now()
		seq := seqM.Run(units, core.RunOptions{})
		seqNS := time.Since(t0).Nanoseconds()

		for _, k := range workers {
			t0 = time.Now()
			rr := sched.ParallelRun(proto, ua, units, sched.RunConfig{
				Workers:   k,
				Collector: opts.Telemetry,
			})
			parNS := time.Since(t0).Nanoseconds()
			if parNS < 1 {
				parNS = 1
			}
			rows = append(rows, ScalingRow{
				Name:    name,
				Workers: k,
				Sharded: rr.Sharded,
				SeqNS:   seqNS,
				ParNS:   parNS,
				Speedup: float64(seqNS) / float64(parNS),
				MBps:    float64(len(w.Input)) / 1e6 / (float64(parNS) / 1e9),
				OutputOK: rr.Reports == seq.Reports &&
					rr.ReportCycles == seq.ReportCycles &&
					rr.MaxReportsPerCycle == seq.MaxReportsPerCycle &&
					rr.KernelCycles == seq.KernelCycles,
			})
		}
	}
	return rows, nil
}

// FprintScalingStudy renders the workers-vs-speedup table.
func FprintScalingStudy(w io.Writer, rows []ScalingRow) {
	fprintf(w, "Scaling: sharded parallel simulation vs sequential (host wall clock)\n")
	fprintf(w, "%-18s %8s %8s %10s %10s %9s %7s %7s\n",
		"Benchmark", "workers", "sharded", "seq ms", "par ms", "speedup", "MB/s", "output")
	for _, r := range rows {
		verdict := "OK"
		if !r.OutputOK {
			verdict = "DIVERGED"
		}
		fprintf(w, "%-18s %8d %8v %10.2f %10.2f %8.2fx %7.1f %7s\n",
			r.Name, r.Workers, r.Sharded,
			float64(r.SeqNS)/1e6, float64(r.ParNS)/1e6, r.Speedup, r.MBps, verdict)
	}
}
