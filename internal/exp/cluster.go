package exp

import (
	"fmt"
	"io"
)

// ClusterRow measures the fault-tolerant scan cluster on one benchmark's
// input under open-loop load: requests arrive on a seeded Poisson clock
// regardless of completions (so queueing is measured, not hidden), route
// through consistent-hash replication with retries, hedging and circuit
// breaking, and every response is checked byte-for-byte against the local
// reference scan.
//
// Rows are produced by loadgen.ClusterStudy (sunder-serve -loadgen
// -cluster N) and exported as BENCH_cluster.json.
type ClusterRow struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
	// Nodes/Replicas record the cluster shape the row measured.
	Nodes    int `json:"nodes"`
	Replicas int `json:"replicas"`
	// Requests is the logical request count; Failed is how many exhausted
	// every retry and hedge. Availability is (Requests-Failed)/Requests.
	Requests     int     `json:"requests"`
	Failed       int     `json:"failed"`
	Availability float64 `json:"availability"`
	// Retried counts logical requests that needed more than one attempt;
	// Hedged counts those whose winning response came from a hedge. Rates
	// are per logical request.
	Retried   int     `json:"retried"`
	Hedged    int     `json:"hedged"`
	HedgeRate float64 `json:"hedge_rate"`
	RetryRate float64 `json:"retry_rate"`
	// OutputOK asserts every served response was byte-identical to the
	// local reference body.
	OutputOK bool  `json:"output_ok"`
	TotalNS  int64 `json:"total_ns"`
	// MBps is served throughput over the open-loop phase wall clock.
	MBps float64 `json:"mbps"`
	// End-to-end logical-request latency quantiles (exact, nearest-rank
	// over raw latencies): includes every retry backoff and hedge.
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
}

// FprintClusterStudy renders the cluster rows as a table.
func FprintClusterStudy(w io.Writer, rows []ClusterRow) {
	fmt.Fprintf(w, "Fault-tolerant scan cluster load test (open-loop arrivals, responses byte-checked against local Scan)\n")
	fmt.Fprintf(w, "%-14s %9s %6s %8s %7s %7s %7s %10s %10s %10s %10s %6s\n",
		"Benchmark", "Bytes", "Reqs", "avail%", "retry%", "hedge%", "failed",
		"MB/s", "p50(ms)", "p99(ms)", "p999(ms)", "Out")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9d %6d %8.3f %7.1f %7.1f %7d %10.2f %10.3f %10.3f %10.3f %6v\n",
			r.Name, r.Bytes, r.Requests, r.Availability*100,
			r.RetryRate*100, r.HedgeRate*100, r.Failed, r.MBps,
			float64(r.P50NS)/1e6, float64(r.P99NS)/1e6, float64(r.P999NS)/1e6,
			r.OutputOK)
	}
}
