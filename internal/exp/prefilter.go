package exp

import (
	"fmt"
	"io"
	"strings"
)

// PrefilterRow measures the literal-prefilter fast path on one benchmark:
// the compiled strategy, wall-clock time filtered vs unfiltered on the
// workload's own (match-bearing) input and on a literal-free input of the
// same length, and the fraction of device cycles the filter proved
// match-free. OutputOK asserts the filtered engine reproduced the
// unfiltered matches and report statistics exactly on both inputs — the
// prefilter's central proof obligation, checked on every row.
type PrefilterRow struct {
	Name     string `json:"name"`
	Strategy string `json:"strategy"`
	Literals int    `json:"literals"`
	// The workload's own input.
	BaseMatchNS  int64   `json:"base_match_ns"`
	FiltMatchNS  int64   `json:"filt_match_ns"`
	MatchSpeedup float64 `json:"match_speedup"`
	SkippedPct   float64 `json:"skipped_pct"`
	// A literal-free input of the same length: the no-match fast path.
	BaseNoMatchNS  int64   `json:"base_nomatch_ns"`
	FiltNoMatchNS  int64   `json:"filt_nomatch_ns"`
	NoMatchSpeedup float64 `json:"nomatch_speedup"`
	// FullSkip is true when the filter skipped the literal-free input
	// entirely (zero device cycles executed).
	FullSkip bool `json:"full_skip"`
	OutputOK bool `json:"output_ok"`
}

// Engaged reports whether the row's filter compiled to a real scanner
// (rather than the conservative no-filter verdict).
func (r PrefilterRow) Engaged() bool {
	return r.Strategy != "" && !strings.HasPrefix(r.Strategy, "off")
}

// FprintPrefilterStudy renders the prefilter table. The rows come from
// prefilterstudy.PrefilterStudy, which lives in its own package because it
// drives the public façade: exp itself must stay importable from the
// façade's in-package benchmarks (bench_test.go) without an import cycle.
func FprintPrefilterStudy(w io.Writer, rows []PrefilterRow) {
	fprintf(w, "Prefilter: literal fast path, filtered vs unfiltered wall time (output equality checked per row)\n")
	fprintf(w, "%-18s %-28s %5s %9s %8s %9s %9s %8s %8s\n",
		"Benchmark", "strategy", "lits", "match x", "skipped", "nomatch x", "fullskip", "base ms", "output")
	for _, r := range rows {
		verdict := "OK"
		if !r.OutputOK {
			verdict = "DIVERGED"
		}
		full := "-"
		if r.FullSkip {
			full = "yes"
		}
		strategy := r.Strategy
		if len(strategy) > 28 {
			strategy = strategy[:25] + "..."
		}
		fprintf(w, "%-18s %-28s %5d %8.2fx %7.1f%% %8.2fx %9s %8.2f %8s\n",
			r.Name, strategy, r.Literals, r.MatchSpeedup, r.SkippedPct,
			r.NoMatchSpeedup, full, float64(r.BaseNoMatchNS)/1e6, verdict)
	}
}

// CheckPrefilterStudy enforces the study's acceptance gates: every row's
// output must be identical, and every row whose filter engaged and fully
// skipped the literal-free input must beat the unfiltered engine by at
// least minSpeedup there. Returns nil when minSpeedup <= 0 rows all pass.
func CheckPrefilterStudy(rows []PrefilterRow, minSpeedup float64) error {
	for _, r := range rows {
		if !r.OutputOK {
			return fmt.Errorf("prefilter changed the output of %s", r.Name)
		}
		if minSpeedup > 0 && r.FullSkip && r.NoMatchSpeedup < minSpeedup {
			return fmt.Errorf("prefilter no-match speedup on %s is %.2fx, want >= %.1fx",
				r.Name, r.NoMatchSpeedup, minSpeedup)
		}
	}
	return nil
}
