package exp

import (
	"io"

	"sunder/internal/funcsim"
	"sunder/internal/workload"
)

// Table1Row is one row of Table 1: static structure and measured dynamic
// reporting behaviour of a benchmark, with the paper's published values
// alongside for comparison.
type Table1Row struct {
	Name   string
	Family workload.Family

	// Measured static analysis.
	States         int
	ReportStates   int
	ReportStatePct float64
	// Measured dynamic behaviour.
	Cycles                int64
	Reports               int64
	ReportCycles          int64
	ReportsPerCycle       float64
	ReportsPerReportCycle float64
	ReportCyclePct        float64

	// Published values (per 1MB input) for the comparison columns.
	PaperReportsPerCycle float64
	PaperBurst           float64
	PaperReportCyclePct  float64
}

// Table1 generates every benchmark at the given scale, simulates it on its
// input stream, and returns the reporting-behaviour summary.
func Table1(opts Options) ([]Table1Row, error) {
	var rows []Table1Row
	for _, spec := range workload.All() {
		w, err := workload.Get(spec.Name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		sim := funcsim.NewByteSimulator(w.Automaton)
		res := sim.Run(w.Input, funcsim.Options{})
		st := w.Automaton.ComputeStats()
		row := Table1Row{
			Name:                  spec.Name,
			Family:                spec.Family,
			States:                st.States,
			ReportStates:          st.ReportStates,
			Cycles:                res.Cycles,
			Reports:               res.Reports,
			ReportCycles:          res.ReportCycles,
			ReportsPerCycle:       res.ReportsPerCycle(),
			ReportsPerReportCycle: res.ReportsPerReportCycle(),
			ReportCyclePct:        res.ReportCycleFraction() * 100,
			PaperReportsPerCycle:  float64(spec.PaperReports) / 1e6,
			PaperBurst:            spec.PaperBurst(),
			PaperReportCyclePct:   spec.PaperReportCycleFraction() * 100,
		}
		if st.States > 0 {
			row.ReportStatePct = 100 * float64(st.ReportStates) / float64(st.States)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintTable1 renders the rows in the paper's layout.
func FprintTable1(w io.Writer, rows []Table1Row, opts Options) {
	fprintf(w, "Table 1: Reporting behavior summary (scale=%.3g, input=%d bytes; paper columns per 1MB)\n",
		opts.Scale, opts.InputLen)
	fprintf(w, "%-18s %-7s %7s %6s %6s %10s %9s %8s %8s %7s | %8s %8s %7s\n",
		"Benchmark", "Family", "States", "#RS", "RS%",
		"#Reports", "#RepCyc", "Rep/Cyc", "Rep/RC", "RC%",
		"pR/Cyc", "pRep/RC", "pRC%")
	for _, r := range rows {
		fprintf(w, "%-18s %-7s %7d %6d %5.1f%% %10d %9d %8.3f %8.2f %6.2f%% | %8.3f %8.2f %6.2f%%\n",
			r.Name, r.Family, r.States, r.ReportStates, r.ReportStatePct,
			r.Reports, r.ReportCycles, r.ReportsPerCycle, r.ReportsPerReportCycle, r.ReportCyclePct,
			r.PaperReportsPerCycle, r.PaperBurst, r.PaperReportCyclePct)
	}
}
