package exp

import (
	"strings"
	"testing"

	"sunder/internal/mapping"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

func TestPowerStudy(t *testing.T) {
	rows, err := PowerStudy(testOpts, []string{"Snort", "ClamAV"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	snort, clam := rows[0], rows[1]
	// Snort reports nearly every cycle; ClamAV never. AP-style reporting
	// power must separate them, Sunder only slightly.
	if snort.APMW <= clam.APMW {
		t.Errorf("AP power: Snort %.2f <= ClamAV %.2f", snort.APMW, clam.APMW)
	}
	if snort.SunderMW <= clam.SunderMW {
		t.Errorf("Sunder power should still rise with reporting")
	}
	apDelta := snort.APMW - clam.APMW
	sunderDelta := snort.SunderMW - clam.SunderMW
	if sunderDelta >= apDelta {
		t.Errorf("Sunder reporting power delta %.2f not below AP's %.2f", sunderDelta, apDelta)
	}
	var sb strings.Builder
	FprintPowerStudy(&sb, rows)
	if !strings.Contains(sb.String(), "pJ/B") {
		t.Error("print missing header")
	}
}

func TestHotColdStudy(t *testing.T) {
	rows, err := HotColdStudy(testOpts, []string{"Snort", "Brill"}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HotStates == 0 || r.ColdStates == 0 {
			t.Errorf("%s: split degenerate: %+v", r.Name, r)
		}
		if r.SunderOverhead < 1 || r.APOverhead < 1 {
			t.Errorf("%s: overheads below 1", r.Name)
		}
		// The complementarity claim: with intermediate reports added,
		// Sunder's overhead stays at or below the AP's.
		if r.SunderOverhead > r.APOverhead+1e-9 {
			t.Errorf("%s: Sunder %.2f above AP %.2f on intermediate reports",
				r.Name, r.SunderOverhead, r.APOverhead)
		}
	}
	var sb strings.Builder
	FprintHotColdStudy(&sb, rows)
	if !strings.Contains(sb.String(), "interm/KB") {
		t.Error("print missing header")
	}
}

func TestCapacityPlan(t *testing.T) {
	w := workload.MustGet("SPM", 0.02, 64)
	ua, err := transform.ToRate(w.Automaton, 4)
	if err != nil {
		t.Fatal(err)
	}
	place, err := mapping.Place(ua, 12)
	if err != nil {
		t.Fatal(err)
	}
	dev := mapping.DefaultDevice()
	plan, err := dev.Plan(place)
	if err != nil {
		t.Fatal(err)
	}
	if plan.RequiredPUs != place.NumPUs {
		t.Errorf("plan PUs = %d, placement %d", plan.RequiredPUs, place.NumPUs)
	}
	if plan.Rounds != 1 {
		t.Errorf("SPM at small scale should fit one round, got %d", plan.Rounds)
	}
	if f := plan.EffectiveThroughputFactor(1_000_000); f <= 0 || f > 1 {
		t.Errorf("throughput factor = %v", f)
	}

	// A tiny device forces multiple rounds and a throughput hit.
	small := mapping.Device{PUs: 4, ReconfigureCyclesPerPU: 512}
	plan2, err := small.Plan(place)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Rounds < 2 {
		t.Errorf("small device rounds = %d", plan2.Rounds)
	}
	if plan2.EffectiveThroughputFactor(1_000_000) >= plan.EffectiveThroughputFactor(1_000_000) {
		t.Error("more rounds did not lower throughput")
	}
	if _, err := (mapping.Device{PUs: 2}).Plan(place); err == nil {
		t.Error("sub-cluster device accepted")
	}
	if plan2.EffectiveThroughputFactor(0) != 1 {
		t.Error("zero-cycle factor not 1")
	}
}
