// Package exp contains one runner per table and figure of the paper's
// evaluation (Section 7), plus the ablation studies listed in DESIGN.md.
// Each runner measures its numbers by generating workloads, transforming
// them, and simulating — nothing is hard-coded except the published
// hardware constants in internal/hardware.
package exp

import (
	"fmt"
	"io"

	"sunder/internal/automata"
	"sunder/internal/core"
	"sunder/internal/mapping"
	"sunder/internal/telemetry"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

// Options scales every experiment. The paper's setting is Scale=1,
// InputLen=1<<20 (1MB); the defaults are reduced for quick runs.
type Options struct {
	// Scale multiplies benchmark state counts (0 < Scale ≤ 1).
	Scale float64
	// InputLen is the input stream length in bytes.
	InputLen int
	// Telemetry, when non-nil, is attached to every machine the
	// experiment runners build, aggregating device counters and trace
	// events across all simulated workloads (per-PU labels then refer to
	// each machine's own PU indices).
	Telemetry *telemetry.Collector
	// Backend, when non-empty, overrides the façade engine backend for
	// the studies that drive the public façade (the -meta study gates
	// this backend instead of "auto" against the best forced backend).
	// The architectural-simulator tables and figures ignore it.
	Backend string
}

// DefaultOptions returns the reduced-scale configuration used by tests and
// default benches.
func DefaultOptions() Options {
	return Options{Scale: workload.DefaultScale, InputLen: workload.DefaultInputLen}
}

// FullOptions returns the paper-scale configuration (1MB input, full-size
// automata). Dense benchmarks take considerably longer at this scale.
func FullOptions() Options {
	return Options{Scale: 1.0, InputLen: 1 << 20}
}

// buildMachine transforms a byte automaton to the rate, places it with an
// adaptive report-column budget (the paper's default is 12; benchmarks
// whose transformed components need a different budget get the closest
// feasible one, as m is a configuration parameter), and configures a
// machine.
func buildMachine(w *workload.Workload, rate int, cfg core.Config) (*core.Machine, error) {
	return buildMachineTel(w, rate, cfg, nil)
}

// buildMachineTel is buildMachine plus an optional telemetry collector
// attached to the configured machine.
func buildMachineTel(w *workload.Workload, rate int, cfg core.Config, tel *telemetry.Collector) (*core.Machine, error) {
	m, _, err := buildMachineUA(w, rate, cfg, tel)
	return m, err
}

// buildMachineUA additionally returns the strided automaton the machine was
// configured from, which the sharded parallel runner needs for report
// resolution and dependence analysis.
func buildMachineUA(w *workload.Workload, rate int, cfg core.Config, tel *telemetry.Collector) (*core.Machine, *automata.UnitAutomaton, error) {
	ua, err := transform.ToRate(w.Automaton, rate)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: transform: %w", w.Spec.Name, err)
	}
	m, err := mapping.AutoReportColumns(ua, cfg.ReportColumns)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", w.Spec.Name, err)
	}
	cfg.ReportColumns = m
	place, err := mapping.Place(ua, cfg.ReportColumns)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: place: %w", w.Spec.Name, err)
	}
	mach, err := core.Configure(ua, place, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: configure: %w", w.Spec.Name, err)
	}
	if tel != nil {
		mach.AttachTelemetry(tel)
	}
	return mach, ua, nil
}

// configureFrom places and configures a machine from an already-transformed
// unit automaton (the pruning study transforms once and prunes a copy, so
// re-transforming as buildMachine does would discard the pruning).
func configureFrom(w *workload.Workload, ua *automata.UnitAutomaton, cfg core.Config) (*core.Machine, error) {
	m, err := mapping.AutoReportColumns(ua, cfg.ReportColumns)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Spec.Name, err)
	}
	cfg.ReportColumns = m
	place, err := mapping.Place(ua, cfg.ReportColumns)
	if err != nil {
		return nil, fmt.Errorf("%s: place: %w", w.Spec.Name, err)
	}
	mach, err := core.Configure(ua, place, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: configure: %w", w.Spec.Name, err)
	}
	return mach, nil
}

// fprintf writes, ignoring errors — the runners print to a caller-supplied
// sink where short writes are the caller's concern.
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
