package exp

import (
	"io"

	"sunder/internal/hardware"
)

// FprintTable2 renders the subarray parameters (Table 2), which are the
// published memory-compiler constants.
func FprintTable2(w io.Writer) {
	fprintf(w, "Table 2: subarray parameters (14nm, 0.8V, incl. peripherals)\n")
	fprintf(w, "%-58s %-10s %8s %10s %10s\n", "Usage", "Size", "Delay", "Read Power", "Area")
	for _, row := range hardware.Table2() {
		fprintf(w, "%-58s %-10s %6.0fps %8.2fmW %7.0fum2\n",
			row.Usage, row.Array.String(), row.Array.DelayPS, row.Array.PowerMW, row.Array.AreaUM2)
	}
}

// Table5Row is one architecture's pipeline timing (Table 5).
type Table5Row struct {
	Arch             hardware.Arch
	StateMatchingPS  float64
	LocalSwitchPS    float64
	GlobalSwitchPS   float64
	MaxFreqGHz       float64
	OperatingFreqGHz float64
}

// Table5 derives the pipeline-stage delays and frequencies.
func Table5() []Table5Row {
	var rows []Table5Row
	for _, a := range []hardware.Arch{hardware.ArchSunder, hardware.ArchImpala, hardware.ArchCA, hardware.ArchAP50, hardware.ArchAP14} {
		p := hardware.PipelineFor(a)
		rows = append(rows, Table5Row{
			Arch:             a,
			StateMatchingPS:  p.StateMatchingPS,
			LocalSwitchPS:    p.LocalSwitchPS,
			GlobalSwitchPS:   p.GlobalSwitchPS,
			MaxFreqGHz:       p.MaxFreqGHz(),
			OperatingFreqGHz: p.OperatingFreqGHz(),
		})
	}
	return rows
}

// FprintTable5 renders the rows in the paper's layout.
func FprintTable5(w io.Writer, rows []Table5Row) {
	fprintf(w, "Table 5: pipeline-stage delays and operating frequency\n")
	fprintf(w, "%-12s %10s %10s %10s %10s %10s\n",
		"Architecture", "Match", "LocalSW", "GlobalSW", "MaxFreq", "OpFreq")
	for _, r := range rows {
		if r.StateMatchingPS == 0 {
			fprintf(w, "%-12s %10s %10s %10s %7.2fGHz %7.2fGHz\n",
				r.Arch, "-", "-", "-", r.MaxFreqGHz, r.OperatingFreqGHz)
			continue
		}
		fprintf(w, "%-12s %8.0fps %8.0fps %8.0fps %7.2fGHz %7.2fGHz\n",
			r.Arch, r.StateMatchingPS, r.LocalSwitchPS, r.GlobalSwitchPS,
			r.MaxFreqGHz, r.OperatingFreqGHz)
	}
}
