package exp

import (
	"fmt"
	"io"
	"slices"

	"sunder/internal/automata"
	"sunder/internal/core"
	"sunder/internal/faults"
	"sunder/internal/funcsim"
	"sunder/internal/mapping"
	"sunder/internal/telemetry"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

// FaultStudyRow summarizes one benchmark run under fault injection with
// detection and recovery armed.
type FaultStudyRow struct {
	Name string
	// Injected counts fault manifestations (flips, stuck-at assertions,
	// drain drops); Detected counts detection events. One fault can trip
	// several detectors, so Detected may exceed Injected.
	Injected int64
	Detected int64
	// Recoveries counts windows that committed after at least one rewind;
	// Quarantined counts PUs retired onto spares.
	Recoveries  int64
	Quarantined int
	// Coverage is the detected fraction of injected faults, clamped to 1.
	Coverage float64
	// Slowdown is total cycles (committed + re-executed + backoff) over
	// fault-free cycles.
	Slowdown float64
	// OutputOK records whether the recovered report stream is identical,
	// cycle for cycle, to a fault-free functional simulation.
	OutputOK bool
}

// faultRef is one recorded report cycle: the cycle index and the sorted
// reporting states.
type faultRef struct {
	cycle  int64
	states []automata.StateID
}

func recordReports(dst *[]faultRef) func(int64, []automata.StateID) {
	return func(cycle int64, states []automata.StateID) {
		cp := append([]automata.StateID(nil), states...)
		slices.Sort(cp)
		*dst = append(*dst, faultRef{cycle: cycle, states: cp})
	}
}

func sameRefs(a, b []faultRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].cycle != b[i].cycle || !slices.Equal(a[i].states, b[i].states) {
			return false
		}
	}
	return true
}

// FaultRun executes one workload under the given fault policy and checks
// the recovered output against a fault-free functional simulation. The
// machine is built fresh (the guard may replace it during quarantine).
func FaultRun(w *workload.Workload, rate int, cfg core.Config, pol faults.Policy, tel *telemetry.Collector) (FaultStudyRow, error) {
	row := FaultStudyRow{Name: w.Spec.Name}
	ua, err := transform.ToRate(w.Automaton, rate)
	if err != nil {
		return row, fmt.Errorf("%s: transform: %w", w.Spec.Name, err)
	}
	m, err := mapping.AutoReportColumns(ua, cfg.ReportColumns)
	if err != nil {
		return row, fmt.Errorf("%s: %w", w.Spec.Name, err)
	}
	cfg.ReportColumns = m
	place, err := mapping.Place(ua, cfg.ReportColumns)
	if err != nil {
		return row, fmt.Errorf("%s: place: %w", w.Spec.Name, err)
	}
	mach, err := core.Configure(ua, place, cfg)
	if err != nil {
		return row, fmt.Errorf("%s: configure: %w", w.Spec.Name, err)
	}

	units := funcsim.BytesToUnits(w.Input, 4)
	var want []faultRef
	funcsim.NewUnitSimulator(ua).Run(units, funcsim.Options{OnReportCycle: recordReports(&want)})

	g, err := faults.NewGuard(mach, ua, place, pol, nil)
	if err != nil {
		return row, fmt.Errorf("%s: guard: %w", w.Spec.Name, err)
	}
	if tel != nil {
		g.AttachTelemetry(tel)
	}
	var got []faultRef
	g.OnReportCycle(recordReports(&got))
	stats, err := g.Run(units)
	if err != nil {
		return row, fmt.Errorf("%s: guarded run: %w", w.Spec.Name, err)
	}

	row.Injected = stats.Injected.Total()
	row.Detected = stats.Detected()
	row.Recoveries = stats.Recoveries
	row.Quarantined = len(stats.QuarantinedPUs)
	row.Coverage = 1
	if row.Injected > 0 {
		row.Coverage = min(1, float64(row.Detected)/float64(row.Injected))
	}
	row.Slowdown = stats.Slowdown()
	row.OutputOK = sameRefs(got, want)
	return row, nil
}

// FaultStudy runs the benchmarks under the fault policy at the default
// 16-bit configuration and reports detection coverage and recovery cost.
func FaultStudy(opts Options, names []string, pol faults.Policy) ([]FaultStudyRow, error) {
	var rows []FaultStudyRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		row, err := FaultRun(w, 4, core.DefaultConfig(4), pol, opts.Telemetry)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintFaultStudy renders the study.
func FprintFaultStudy(w io.Writer, rows []FaultStudyRow, pol faults.Policy) {
	fprintf(w, "Fault study: injection, detection, recovery (match=%g report=%g stuck=%d drop=%g seed=%d interval=%d)\n",
		pol.MatchFlipRate, pol.ReportFlipRate, pol.StuckXbarFaults, pol.DrainDropRate,
		pol.Seed, pol.CheckpointInterval)
	fprintf(w, "%-18s %9s %9s %9s %11s %12s %10s %8s\n",
		"Benchmark", "injected", "detected", "coverage", "recoveries", "quarantined", "slowdown", "output")
	for _, r := range rows {
		out := "OK"
		if !r.OutputOK {
			out = "DIVERGED"
		}
		fprintf(w, "%-18s %9d %9d %8.0f%% %11d %12d %9.3fx %8s\n",
			r.Name, r.Injected, r.Detected, 100*r.Coverage, r.Recoveries, r.Quarantined, r.Slowdown, out)
	}
}
