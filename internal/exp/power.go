package exp

import (
	"io"

	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/hardware"
	"sunder/internal/workload"
)

// PowerRow is one row of the power/energy extension study: per-PU dynamic
// power and energy per input byte for each architecture, driven by the
// benchmark's measured report-cycle fraction. This experiment extends the
// paper (which reports Table 2's power inputs but no power results) using
// only published constants; see internal/hardware/power.go for the model.
type PowerRow struct {
	Name            string
	ReportCycleFrac float64
	// Per architecture: total per-PU mW and pJ/byte.
	SunderMW, CAMW, ImpalaMW, APMW float64
	SunderPJ, CAPJ, ImpalaPJ, APPJ float64
	// MeasuredSunderPJ is the architectural simulator's measured energy
	// per byte per PU, from its actual access counts.
	MeasuredSunderPJ float64
}

// PowerStudy measures report-cycle fractions and evaluates the power model.
// The MeasuredSunderPJ column comes from the architectural simulator's own
// access counters (match reads, crossbar row activations, report writes,
// exported bits) rather than the constant-activity model.
func PowerStudy(opts Options, names []string) ([]PowerRow, error) {
	var rows []PowerRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		res := funcsim.NewByteSimulator(w.Automaton).Run(w.Input, funcsim.Options{})
		rc := res.ReportCycleFraction()
		row := PowerRow{
			Name:            name,
			ReportCycleFrac: rc,
			SunderMW:        hardware.PowerFor(hardware.ArchSunder, rc).TotalMW(),
			CAMW:            hardware.PowerFor(hardware.ArchCA, rc).TotalMW(),
			ImpalaMW:        hardware.PowerFor(hardware.ArchImpala, rc).TotalMW(),
			APMW:            hardware.PowerFor(hardware.ArchAP14, rc).TotalMW(),
			SunderPJ:        hardware.EnergyPerByte(hardware.ArchSunder, rc),
			CAPJ:            hardware.EnergyPerByte(hardware.ArchCA, rc),
			ImpalaPJ:        hardware.EnergyPerByte(hardware.ArchImpala, rc),
			APPJ:            hardware.EnergyPerByte(hardware.ArchAP14, rc),
		}
		cfg := core.DefaultConfig(4)
		cfg.FIFO = true
		if m, err := buildMachineTel(w, 4, cfg, opts.Telemetry); err == nil {
			m.Run(funcsim.BytesToUnits(w.Input, 4), core.RunOptions{})
			row.MeasuredSunderPJ = m.EnergyPerByte() / float64(m.NumPUs())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintPowerStudy renders the study.
func FprintPowerStudy(w io.Writer, rows []PowerRow) {
	fprintf(w, "Extension: per-PU dynamic power (mW) and energy per byte (pJ/B)\n")
	fprintf(w, "%-18s %6s | %7s %7s %7s %7s | %7s %7s %7s %7s | %8s\n", "Benchmark", "RC%",
		"Sun mW", "CA mW", "Imp mW", "AP mW", "Sun pJ", "CA pJ", "Imp pJ", "AP pJ", "meas pJ")
	for _, r := range rows {
		fprintf(w, "%-18s %5.1f%% | %7.2f %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f %7.2f | %8.2f\n",
			r.Name, 100*r.ReportCycleFrac,
			r.SunderMW, r.CAMW, r.ImpalaMW, r.APMW,
			r.SunderPJ, r.CAPJ, r.ImpalaPJ, r.APPJ, r.MeasuredSunderPJ)
	}
}
