package exp

import (
	"strings"
	"testing"

	"sunder/internal/hardware"
)

// testOpts keeps experiment tests fast.
var testOpts = Options{Scale: 0.01, InputLen: 8000}

func TestTable1(t *testing.T) {
	rows, err := Table1(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("rows = %d, want 19", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.States <= 0 || r.ReportStates <= 0 {
			t.Errorf("%s: empty statics", r.Name)
		}
	}
	// Behaviour classes (details are tested in workload; spot-check the
	// table assembly).
	if byName["ClamAV"].Reports != 0 {
		t.Error("ClamAV reported")
	}
	if byName["Snort"].ReportCyclePct < 80 {
		t.Errorf("Snort RC%% = %v", byName["Snort"].ReportCyclePct)
	}
	if byName["SPM"].ReportsPerReportCycle < 5 {
		t.Errorf("SPM burst = %v", byName["SPM"].ReportsPerReportCycle)
	}
	var sb strings.Builder
	FprintTable1(&sb, rows, testOpts)
	if !strings.Contains(sb.String(), "Brill") {
		t.Error("print missing rows")
	}
}

func TestTable3(t *testing.T) {
	rows, err := Table3(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // ClamAV excluded
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	sx, ex := Table3Averages(rows)
	// Paper shape: 1-nibble worst (≈2–6×), 2-nibble near 1×, 4-nibble
	// between them.
	if sx[0] < 1.5 || sx[0] > 6 {
		t.Errorf("avg 1-nibble state ratio %.2f outside [1.5,6]", sx[0])
	}
	if sx[1] < 0.7 || sx[1] > 1.6 {
		t.Errorf("avg 2-nibble state ratio %.2f outside [0.7,1.6]", sx[1])
	}
	if sx[2] < 0.8 || sx[2] > 3.0 {
		t.Errorf("avg 4-nibble state ratio %.2f outside [0.8,3.0]", sx[2])
	}
	if !(sx[0] > sx[1]) {
		t.Errorf("1-nibble (%.2f) should exceed 2-nibble (%.2f)", sx[0], sx[1])
	}
	if ex[1] > ex[0] {
		t.Errorf("edge ratios: 2-nibble %.2f above 1-nibble %.2f", ex[1], ex[0])
	}
	for _, r := range rows {
		for i := range r.States {
			if r.States[i] <= 0 {
				t.Errorf("%s: zero states at rate index %d", r.Name, i)
			}
		}
	}
	var sb strings.Builder
	FprintTable3(&sb, rows, testOpts)
	if !strings.Contains(sb.String(), "Average") {
		t.Error("print missing average row")
	}
}

func TestTable4AndFigure8(t *testing.T) {
	rows, err := Table4(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Name] = r
		// Headline claims: Sunder overhead stays small everywhere
		// (vs 46× for the AP), and the FIFO drain strategy absorbs
		// even the dense cases almost completely.
		if r.SunderOverhead > 1.5 {
			t.Errorf("%s: Sunder w/o FIFO overhead %.2f", r.Name, r.SunderOverhead)
		}
		if r.SunderFIFOOverhead > 1.05 {
			t.Errorf("%s: Sunder w/ FIFO overhead %.3f", r.Name, r.SunderFIFOOverhead)
		}
		if r.SunderFIFOOverhead > r.SunderOverhead+1e-9 {
			t.Errorf("%s: FIFO %.3f worse than plain %.3f", r.Name, r.SunderFIFOOverhead, r.SunderOverhead)
		}
		if r.APOverhead < 1 || r.RADOverhead < 1 {
			t.Errorf("%s: overheads below 1", r.Name)
		}
	}
	// Snort must hurt the AP badly and RAD must help it.
	if byName["Snort"].APOverhead < 10 {
		t.Errorf("Snort AP overhead %.1f too low", byName["Snort"].APOverhead)
	}
	if byName["Snort"].RADOverhead >= byName["Snort"].APOverhead {
		t.Error("RAD did not help Snort")
	}
	// RAD must not help dense SPM.
	if spm := byName["SPM"]; spm.RADOverhead < spm.APOverhead*0.9 {
		t.Errorf("RAD helped dense SPM: %.2f vs %.2f", spm.RADOverhead, spm.APOverhead)
	}
	// Silent benchmarks incur nothing anywhere.
	for _, name := range []string{"ClamAV", "Dotstar03", "Ranges1", "Hamming"} {
		r := byName[name]
		if r.SunderFlushes != 0 || r.APOverhead > 1.01 {
			t.Errorf("%s: unexpected overheads %+v", name, r)
		}
	}
	s, sf, ap, rad := Table4Averages(rows)
	if !(s < ap && s < rad && sf <= s && rad <= ap) {
		t.Errorf("average ordering wrong: sunder %.2f fifo %.2f ap %.2f rad %.2f", s, sf, ap, rad)
	}

	f8 := Figure8(rows)
	if f8[0].Arch != hardware.ArchSunder {
		t.Fatal("figure 8 first row not Sunder")
	}
	for _, r := range f8[1:] {
		if r.SunderSpeedupAP <= 1 {
			t.Errorf("Sunder not faster than %s under AP reporting (%.2fx)", r.Arch, r.SunderSpeedupAP)
		}
		if r.SunderSpeedupRAD > r.SunderSpeedupAP {
			t.Errorf("%s: RAD speedup %.1f exceeds AP %.1f", r.Arch, r.SunderSpeedupRAD, r.SunderSpeedupAP)
		}
	}
	// AP (50nm) must be the slowest.
	last := f8[len(f8)-1]
	if last.Arch != hardware.ArchAP50 || last.SunderSpeedupAP < 50 {
		t.Errorf("AP50 speedup = %.0f, want large", last.SunderSpeedupAP)
	}
	var sb strings.Builder
	FprintTable4(&sb, rows, testOpts)
	FprintFigure8(&sb, f8)
	if !strings.Contains(sb.String(), "Avg. Overhead") {
		t.Error("print missing rows")
	}
}

func TestTable5Print(t *testing.T) {
	rows := Table5()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	FprintTable2(&sb)
	FprintTable5(&sb, rows)
	out := sb.String()
	for _, want := range []string{"6T 16x16", "Sunder", "AP (50nm)"} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q", want)
		}
	}
}

func TestFigure9(t *testing.T) {
	rows := Figure9()
	if rows[0].Breakdown.Arch != hardware.ArchSunder || rows[0].VsSunder != 1 {
		t.Error("first row not Sunder baseline")
	}
	for _, r := range rows[1:] {
		if r.VsSunder <= 1 {
			t.Errorf("%s not larger than Sunder", r.Breakdown.Arch)
		}
	}
	var sb strings.Builder
	FprintFigure9(&sb, rows)
	if !strings.Contains(sb.String(), "Reporting") {
		t.Error("print missing header")
	}
}

func TestFigure10(t *testing.T) {
	const inputLen = 160000
	pts, err := Figure10(inputLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	// Flat near 1× at low rates.
	if pts[0].NoSummarization > 1.01 {
		t.Errorf("1%% slowdown = %.3f", pts[0].NoSummarization)
	}
	last := pts[len(pts)-1]
	if last.ReportCyclePct != 100 {
		t.Fatal("last point not 100%")
	}
	// At 100%: flushing hurts, summarization nearly eliminates it, and
	// the curve is monotone in reporting rate.
	if last.NoSummarization < 1.1 {
		t.Errorf("100%% no-summarize slowdown = %.3f, want noticeable", last.NoSummarization)
	}
	if last.WithSummarization >= last.NoSummarization {
		t.Errorf("summarization did not help: %.3f vs %.3f", last.WithSummarization, last.NoSummarization)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NoSummarization+1e-9 < pts[i-1].NoSummarization {
			t.Errorf("slowdown not monotone at %d%%", pts[i].ReportCyclePct)
		}
	}
	var sb strings.Builder
	FprintFigure10(&sb, pts, inputLen)
	if !strings.Contains(sb.String(), "100%") {
		t.Error("print missing rows")
	}
}
