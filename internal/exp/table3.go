package exp

import (
	"io"

	"sunder/internal/transform"
	"sunder/internal/workload"
)

// Table3Row holds the state and transition overheads of the 1-, 2- and
// 4-nibble transformations of one benchmark, normalized to the original
// 8-bit automaton (Table 3).
type Table3Row struct {
	Name string

	ByteStates int
	ByteEdges  int

	States [3]int // 1-, 2-, 4-nibble absolute counts
	Edges  [3]int
	StateX [3]float64 // ratios vs 8-bit
	EdgeX  [3]float64
}

// table3Rates maps result indices to processing rates.
var table3Rates = [3]int{1, 2, 4}

// Table3 transforms every benchmark (except ClamAV, which the paper omits
// from this table) to each processing rate and measures the overheads.
func Table3(opts Options) ([]Table3Row, error) {
	var rows []Table3Row
	for _, spec := range workload.All() {
		if spec.Name == "ClamAV" {
			continue
		}
		w, err := workload.Get(spec.Name, opts.Scale, 64) // input unused here
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Name:       spec.Name,
			ByteStates: w.Automaton.NumStates(),
			ByteEdges:  w.Automaton.NumEdges(),
		}
		for i, rate := range table3Rates {
			ua, err := transform.ToRate(w.Automaton, rate)
			if err != nil {
				return nil, err
			}
			row.States[i] = ua.NumStates()
			row.Edges[i] = ua.NumEdges()
			row.StateX[i] = float64(ua.NumStates()) / float64(row.ByteStates)
			row.EdgeX[i] = float64(ua.NumEdges()) / float64(max1(row.ByteEdges))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Table3Averages returns the per-rate mean state and edge ratios (the
// paper's Average row).
func Table3Averages(rows []Table3Row) (stateX, edgeX [3]float64) {
	for _, r := range rows {
		for i := range table3Rates {
			stateX[i] += r.StateX[i]
			edgeX[i] += r.EdgeX[i]
		}
	}
	n := float64(len(rows))
	for i := range table3Rates {
		stateX[i] /= n
		edgeX[i] /= n
	}
	return stateX, edgeX
}

// FprintTable3 renders the rows in the paper's layout.
func FprintTable3(w io.Writer, rows []Table3Row, opts Options) {
	fprintf(w, "Table 3: states and transitions normalized to the original 8-bit automata (scale=%.3g)\n", opts.Scale)
	fprintf(w, "%-18s | %8s %8s %8s | %8s %8s %8s\n", "Benchmark",
		"S 4-bit", "S 8-bit", "S 16-bit", "T 4-bit", "T 8-bit", "T 16-bit")
	for _, r := range rows {
		fprintf(w, "%-18s | %7.1fx %7.1fx %7.1fx | %7.1fx %7.1fx %7.1fx\n",
			r.Name, r.StateX[0], r.StateX[1], r.StateX[2], r.EdgeX[0], r.EdgeX[1], r.EdgeX[2])
	}
	sx, ex := Table3Averages(rows)
	fprintf(w, "%-18s | %7.1fx %7.1fx %7.1fx | %7.1fx %7.1fx %7.1fx\n",
		"Average", sx[0], sx[1], sx[2], ex[0], ex[1], ex[2])
}
