// Package metastudy measures the meta-engine's backend selection through
// the public façade. It is separate from internal/exp for the same reason
// as prefilterstudy: it imports the sunder package itself, and exp must
// remain importable from the façade's in-package benchmarks without an
// import cycle, so the row type, printer and acceptance gate live in exp
// and only the runner lives here.
package metastudy

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sunder"
	"sunder/internal/exp"
	"sunder/internal/workload"
)

// MetaStudy compiles every named benchmark under Backend "auto" and every
// forced backend, times each on the benchmark input (best of three), and
// reports auto's choice against the fastest forced backend. Forced "dfa"
// legs that the configuration cannot support are recorded as absent
// (DFANS 0); "auto" and the other backends never fail. A non-empty
// opts.Backend replaces "auto" as the gated leg, so
// `sunder-bench -meta -backend nfa` measures what forcing that backend
// costs against the best choice.
func MetaStudy(opts exp.Options, names []string) ([]exp.MetaRow, error) {
	target := opts.Backend
	if target == "" {
		target = "auto"
	}
	var rows []exp.MetaRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		compile := func(backend string) (*sunder.Engine, error) {
			o := sunder.DefaultOptions()
			o.Backend = backend
			return sunder.CompileAutomaton(w.Automaton, o)
		}
		base, err := compile("nfa")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		auto, err := compile(target)
		if err != nil {
			return nil, fmt.Errorf("%s (%s): %w", name, target, err)
		}
		par, err := compile("parallel")
		if err != nil {
			return nil, fmt.Errorf("%s (parallel): %w", name, err)
		}

		baseRes, baseNS, err := timeScan(base, w.Input)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		autoRes, autoNS, err := timeScan(auto, w.Input)
		if err != nil {
			return nil, fmt.Errorf("%s (auto): %w", name, err)
		}
		parRes, parNS, err := timeScan(par, w.Input)
		if err != nil {
			return nil, fmt.Errorf("%s (parallel): %w", name, err)
		}
		outputOK := sameScan(baseRes, autoRes) && sameScan(baseRes, parRes)

		row := exp.MetaRow{
			Name:         name,
			Choice:       auto.Info().Backend,
			AutoNS:       autoNS,
			NFANS:        baseNS,
			ParallelNS:   parNS,
			SpeedupVsNFA: ratio(baseNS, autoNS),
			BestBackend:  "nfa",
			BestNS:       baseNS,
		}
		if parNS < row.BestNS {
			row.BestBackend, row.BestNS = "parallel", parNS
		}
		if dfa, err := compile("dfa"); err == nil {
			dfaRes, dfaNS, terr := timeScan(dfa, w.Input)
			if terr != nil {
				return nil, fmt.Errorf("%s (dfa): %w", name, terr)
			}
			row.DFANS = dfaNS
			outputOK = outputOK && sameScan(baseRes, dfaRes)
			if dfaNS < row.BestNS {
				row.BestBackend, row.BestNS = "dfa", dfaNS
			}
		} else if !strings.Contains(err.Error(), "unsupported") {
			return nil, fmt.Errorf("%s (dfa): %w", name, err)
		}
		if st := auto.DFAStats(); st.Hits+st.Misses > 0 {
			row.DFAStates = st.States
			row.CacheHitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
			row.Fallbacks = st.Fallbacks
		}
		row.OutputOK = outputOK
		rows = append(rows, row)
	}
	return rows, nil
}

// timeScan runs the scan three times and returns the last result with the
// fastest wall time, so one-off warm-up noise (lazy-DFA cache fill
// included) does not distort a ratio.
func timeScan(e *sunder.Engine, input []byte) (*sunder.ScanResult, int64, error) {
	var res *sunder.ScanResult
	best := int64(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		r, err := e.Scan(input)
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, 0, err
		}
		res = r
		if best == 0 || ns < best {
			best = ns
		}
	}
	return res, best, nil
}

// sameScan compares two results as match multisets (parallel shards and
// the per-cycle DFA emission order may interleave equal-cycle matches
// differently) plus the report statistics.
func sameScan(a, b *sunder.ScanResult) bool {
	if a.Stats.Reports != b.Stats.Reports || a.Stats.ReportCycles != b.Stats.ReportCycles {
		return false
	}
	if len(a.Matches) != len(b.Matches) {
		return false
	}
	am, bm := sortedMatches(a.Matches), sortedMatches(b.Matches)
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return true
}

func sortedMatches(ms []sunder.Match) []sunder.Match {
	out := append([]sunder.Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Position != out[j].Position {
			return out[i].Position < out[j].Position
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func ratio(base, other int64) float64 {
	if other <= 0 {
		return 0
	}
	return float64(base) / float64(other)
}
