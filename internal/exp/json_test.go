package exp

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCollectAllJSON(t *testing.T) {
	res, err := CollectAll(Options{Scale: 0.005, InputLen: 3000}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Table1) != 19 || len(back.Table3) != 18 || len(back.Table4) != 19 {
		t.Errorf("row counts: t1=%d t3=%d t4=%d", len(back.Table1), len(back.Table3), len(back.Table4))
	}
	if len(back.Table5) != 5 || len(back.Figure8) != 5 || len(back.Figure9) != 4 || len(back.Figure10) != 8 {
		t.Errorf("row counts: t5=%d f8=%d f9=%d f10=%d",
			len(back.Table5), len(back.Figure8), len(back.Figure9), len(back.Figure10))
	}
	if back.Options.Scale != 0.005 {
		t.Errorf("options not preserved: %+v", back.Options)
	}
}
