package exp

import (
	"io"

	"sunder/internal/analysis"
	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

// PruningRow measures the effect of dead-state pruning on one benchmark:
// how many states each analysis (unreachable, useless, never-match,
// subsumed) removed, the report rows freed, and the mapped footprint before
// and after. OutputOK asserts the pruned machine reproduced the unpruned
// machine's report statistics exactly — the analyzer's central proof
// obligation, checked here on every row rather than assumed.
type PruningRow struct {
	Name string `json:"name"`
	Rate int    `json:"rate"`
	// States / Pruned are the strided state count and total removed.
	States int `json:"states"`
	Pruned int `json:"pruned"`
	// Per-reason breakdown of Pruned.
	Unreachable     int `json:"unreachable"`
	Useless         int `json:"useless"`
	NeverMatch      int `json:"never_match"`
	Subsumed        int `json:"subsumed"`
	ReportRowsFreed int `json:"report_rows_freed"`
	// PUsBefore/PUsAfter is the mapped footprint in 256-state processing
	// units.
	PUsBefore int `json:"pus_before"`
	PUsAfter  int `json:"pus_after"`
	// OutputOK asserts report statistics were preserved exactly.
	OutputOK bool `json:"output_ok"`
}

// PruningStudy compiles every benchmark at the given rate, prunes a copy,
// and runs both on the benchmark's input, comparing the report statistics.
func PruningStudy(opts Options, names []string, rate int) ([]PruningRow, error) {
	var rows []PruningRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		ua, err := transform.ToRate(w.Automaton, rate)
		if err != nil {
			return nil, err
		}
		pruned := ua.Clone()
		res := analysis.Prune(pruned)
		prunedW := &workload.Workload{Spec: w.Spec, Automaton: w.Automaton, Input: w.Input}

		base, err := buildMachine(w, rate, core.DefaultConfig(rate))
		if err != nil {
			return nil, err
		}
		// Build the pruned machine from the pruned automaton directly
		// (buildMachine re-transforms, so place and configure by hand).
		after, err := configureFrom(prunedW, pruned, core.DefaultConfig(rate))
		if err != nil {
			return nil, err
		}

		units := funcsim.BytesToUnits(w.Input, 4)
		baseRes := base.Run(units, core.RunOptions{})
		afterRes := after.Run(units, core.RunOptions{})

		rows = append(rows, PruningRow{
			Name:            name,
			Rate:            rate,
			States:          res.Before,
			Pruned:          res.Removed(),
			Unreachable:     res.Unreachable,
			Useless:         res.Useless,
			NeverMatch:      res.NeverMatch,
			Subsumed:        res.Subsumed,
			ReportRowsFreed: res.ReportRowsFreed,
			PUsBefore:       base.NumPUs(),
			PUsAfter:        after.NumPUs(),
			OutputOK: baseRes.Reports == afterRes.Reports &&
				baseRes.ReportCycles == afterRes.ReportCycles &&
				baseRes.KernelCycles == afterRes.KernelCycles &&
				baseRes.MaxReportsPerCycle == afterRes.MaxReportsPerCycle,
		})
	}
	return rows, nil
}

// FprintPruningStudy renders the pruning footprint table.
func FprintPruningStudy(w io.Writer, rows []PruningRow) {
	fprintf(w, "Pruning: dead-state elimination at rate %d (output equality checked per row)\n",
		rowsRate(rows))
	fprintf(w, "%-18s %7s %7s %7s %7s %7s %7s %6s %5s %5s %8s\n",
		"Benchmark", "states", "pruned", "unreach", "useless", "nomatch", "subsum", "rows", "PU", "PU'", "output")
	for _, r := range rows {
		verdict := "OK"
		if !r.OutputOK {
			verdict = "DIVERGED"
		}
		fprintf(w, "%-18s %7d %7d %7d %7d %7d %7d %6d %5d %5d %8s\n",
			r.Name, r.States, r.Pruned, r.Unreachable, r.Useless, r.NeverMatch,
			r.Subsumed, r.ReportRowsFreed, r.PUsBefore, r.PUsAfter, verdict)
	}
}

func rowsRate(rows []PruningRow) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Rate
}
