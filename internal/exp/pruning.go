package exp

import (
	"fmt"
	"io"

	"time"

	"sunder/internal/analysis"
	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

// PruningRow measures the effect of dead-state pruning on one benchmark:
// how many states each analysis (unreachable, useless, never-match,
// subsumed) removed, the report rows freed, and the mapped footprint before
// and after. OutputOK asserts the pruned machine reproduced the unpruned
// machine's report statistics exactly — the analyzer's central proof
// obligation, checked here on every row rather than assumed.
type PruningRow struct {
	Name string `json:"name"`
	Rate int    `json:"rate"`
	// States / Pruned are the strided state count and total removed.
	States int `json:"states"`
	Pruned int `json:"pruned"`
	// Per-reason breakdown of Pruned.
	Unreachable     int `json:"unreachable"`
	Useless         int `json:"useless"`
	NeverMatch      int `json:"never_match"`
	Subsumed        int `json:"subsumed"`
	ReportRowsFreed int `json:"report_rows_freed"`
	// PUsBefore/PUsAfter is the mapped footprint in 256-state processing
	// units.
	PUsBefore int `json:"pus_before"`
	PUsAfter  int `json:"pus_after"`
	// OutputOK asserts report statistics were preserved exactly.
	OutputOK bool `json:"output_ok"`
	// The remaining columns measure the certified minimizer
	// (analysis.Minimize) on the same automaton: the state count after
	// minimization, the bisimulation/prefix-collapse merge breakdown, the
	// verified symbol-equivalence class count of the byte automaton, the
	// compression ratio States/MinStates, and the minimize+verify wall
	// time. MinOutputOK asserts the minimized machine reproduced the
	// baseline report statistics exactly, and CertOK that the emitted
	// equivalence certificate passed CheckCertificate.
	MinStates        int     `json:"min_states"`
	BisimMerged      int     `json:"bisim_merged"`
	PrefixMerged     int     `json:"prefix_merged"`
	SymbolClasses    int     `json:"symbol_classes"`
	CompressionRatio float64 `json:"compression_ratio"`
	MinimizeNS       int64   `json:"minimize_ns"`
	CertOK           bool    `json:"cert_ok"`
	MinOutputOK      bool    `json:"min_output_ok"`
}

// PruningStudy compiles every benchmark at the given rate, prunes a copy,
// and runs both on the benchmark's input, comparing the report statistics.
func PruningStudy(opts Options, names []string, rate int) ([]PruningRow, error) {
	var rows []PruningRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		ua, err := transform.ToRate(w.Automaton, rate)
		if err != nil {
			return nil, err
		}
		pruned := ua.Clone()
		res := analysis.Prune(pruned)
		prunedW := &workload.Workload{Spec: w.Spec, Automaton: w.Automaton, Input: w.Input}

		base, err := buildMachine(w, rate, core.DefaultConfig(rate))
		if err != nil {
			return nil, err
		}
		// Build the pruned machine from the pruned automaton directly
		// (buildMachine re-transforms, so place and configure by hand).
		after, err := configureFrom(prunedW, pruned, core.DefaultConfig(rate))
		if err != nil {
			return nil, err
		}

		// Minimize an independent copy, verify its certificate, and run it
		// against the same baseline.
		minimized := ua.Clone()
		minStart := time.Now()
		mres := analysis.Minimize(minimized)
		certErr := analysis.CheckCertificate(ua, minimized, mres.Cert)
		sc := analysis.SymbolClasses(w.Automaton)
		scErr := analysis.CheckSymbolClasses(w.Automaton, sc)
		minimizeNS := time.Since(minStart).Nanoseconds()
		minM, err := configureFrom(prunedW, minimized, core.DefaultConfig(rate))
		if err != nil {
			return nil, err
		}

		units := funcsim.BytesToUnits(w.Input, 4)
		baseRes := base.Run(units, core.RunOptions{})
		afterRes := after.Run(units, core.RunOptions{})
		minRes := minM.Run(units, core.RunOptions{})

		rows = append(rows, PruningRow{
			Name:            name,
			Rate:            rate,
			States:          res.Before,
			Pruned:          res.Removed(),
			Unreachable:     res.Unreachable,
			Useless:         res.Useless,
			NeverMatch:      res.NeverMatch,
			Subsumed:        res.Subsumed,
			ReportRowsFreed: res.ReportRowsFreed,
			PUsBefore:       base.NumPUs(),
			PUsAfter:        after.NumPUs(),
			OutputOK: baseRes.Reports == afterRes.Reports &&
				baseRes.ReportCycles == afterRes.ReportCycles &&
				baseRes.KernelCycles == afterRes.KernelCycles &&
				baseRes.MaxReportsPerCycle == afterRes.MaxReportsPerCycle,
			MinStates:        mres.After,
			BisimMerged:      mres.BisimMerged,
			PrefixMerged:     mres.PrefixMerged,
			SymbolClasses:    sc.Count(),
			CompressionRatio: float64(mres.Before) / float64(max(mres.After, 1)),
			MinimizeNS:       minimizeNS,
			CertOK:           certErr == nil && scErr == nil,
			MinOutputOK: baseRes.Reports == minRes.Reports &&
				baseRes.ReportCycles == minRes.ReportCycles &&
				baseRes.KernelCycles == minRes.KernelCycles &&
				baseRes.MaxReportsPerCycle == minRes.MaxReportsPerCycle,
		})
	}
	return rows, nil
}

// FprintPruningStudy renders the pruning footprint table followed by the
// certified-minimization table.
func FprintPruningStudy(w io.Writer, rows []PruningRow) {
	fprintf(w, "Pruning: dead-state elimination at rate %d (output equality checked per row)\n",
		rowsRate(rows))
	fprintf(w, "%-18s %7s %7s %7s %7s %7s %7s %6s %5s %5s %8s\n",
		"Benchmark", "states", "pruned", "unreach", "useless", "nomatch", "subsum", "rows", "PU", "PU'", "output")
	for _, r := range rows {
		verdict := "OK"
		if !r.OutputOK {
			verdict = "DIVERGED"
		}
		fprintf(w, "%-18s %7d %7d %7d %7d %7d %7d %6d %5d %5d %8s\n",
			r.Name, r.States, r.Pruned, r.Unreachable, r.Useless, r.NeverMatch,
			r.Subsumed, r.ReportRowsFreed, r.PUsBefore, r.PUsAfter, verdict)
	}
	fprintf(w, "\nCertified minimization: prune+bisim+prefix collapse, certificate verified per row\n")
	fprintf(w, "%-18s %7s %7s %6s %6s %8s %6s %8s %9s %8s\n",
		"Benchmark", "states", "min", "bisim", "prefix", "ratio", "symcl", "cert", "mintime", "output")
	for _, r := range rows {
		cert := "OK"
		if !r.CertOK {
			cert = "REJECTED"
		}
		verdict := "OK"
		if !r.MinOutputOK {
			verdict = "DIVERGED"
		}
		fprintf(w, "%-18s %7d %7d %6d %6d %7.3fx %6d %8s %7.2fms %8s\n",
			r.Name, r.States, r.MinStates, r.BisimMerged, r.PrefixMerged,
			r.CompressionRatio, r.SymbolClasses, cert,
			float64(r.MinimizeNS)/1e6, verdict)
	}
}

// CheckMinimizeStudy fails if any row's minimization certificate was
// rejected or its minimized machine diverged from the baseline — the gate
// sunder-bench applies before publishing minimization numbers.
func CheckMinimizeStudy(rows []PruningRow) error {
	for _, r := range rows {
		if !r.CertOK {
			return fmt.Errorf("exp: %s rate %d: minimization certificate rejected", r.Name, r.Rate)
		}
		if !r.MinOutputOK {
			return fmt.Errorf("exp: %s rate %d: minimized machine diverged from the baseline", r.Name, r.Rate)
		}
	}
	return nil
}

func rowsRate(rows []PruningRow) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Rate
}
