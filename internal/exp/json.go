package exp

import (
	"encoding/json"
	"io"
)

// Results bundles every experiment's rows for machine-readable export
// (sunder-bench -json), so downstream plotting does not have to parse the
// printed tables.
type Results struct {
	Options  Options         `json:"options"`
	Table1   []Table1Row     `json:"table1,omitempty"`
	Table3   []Table3Row     `json:"table3,omitempty"`
	Table4   []Table4Row     `json:"table4,omitempty"`
	Table5   []Table5Row     `json:"table5,omitempty"`
	Figure8  []Figure8Row    `json:"figure8,omitempty"`
	Figure9  []Figure9Row    `json:"figure9,omitempty"`
	Figure10 []Figure10Point `json:"figure10,omitempty"`
	// Scaling is populated by the -par study only (like the ablations, it
	// is excluded from CollectAll).
	Scaling []ScalingRow `json:"scaling,omitempty"`
	// Pruning is populated by the -prune study only (excluded from
	// CollectAll).
	Pruning []PruningRow `json:"pruning,omitempty"`
	// Serve is populated by `sunder-serve -loadgen` only (excluded from
	// CollectAll): the network scan service driven over every benchmark
	// input (BENCH_serve.json).
	Serve []ServeRow `json:"serve,omitempty"`
	// Cluster is populated by `sunder-serve -loadgen -cluster N` only
	// (excluded from CollectAll): the replicated scan cluster under
	// open-loop load, optionally with chaos (BENCH_cluster.json).
	Cluster []ClusterRow `json:"cluster,omitempty"`
	// Prefilter is populated by the -prefilter study only (excluded from
	// CollectAll): the literal fast path, filtered vs unfiltered
	// (BENCH_prefilter.json).
	Prefilter []PrefilterRow `json:"prefilter,omitempty"`
	// Meta is populated by the -meta study only (excluded from
	// CollectAll): auto backend selection vs every forced backend
	// (BENCH_meta.json).
	Meta []MetaRow `json:"meta,omitempty"`
}

// CollectAll runs every table and figure and bundles the rows.
func CollectAll(opts Options, figure10Input int) (*Results, error) {
	res := &Results{Options: opts}
	var err error
	if res.Table1, err = Table1(opts); err != nil {
		return nil, err
	}
	if res.Table3, err = Table3(opts); err != nil {
		return nil, err
	}
	if res.Table4, err = Table4(opts); err != nil {
		return nil, err
	}
	res.Table5 = Table5()
	res.Figure8 = Figure8(res.Table4)
	res.Figure9 = Figure9()
	if res.Figure10, err = Figure10(figure10Input); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteJSON marshals the results with indentation.
func (r *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
