package exp

import (
	"fmt"
	"io"
)

// MetaRow measures the meta-engine's backend selection on one benchmark:
// wall-clock time under Backend "auto" against every forced backend, the
// choice auto made (with its rationale), and the lazy-DFA cache behaviour
// when the choice was the DFA. OutputOK asserts every backend reproduced
// the sequential NFA core's matches and report statistics exactly.
type MetaRow struct {
	Name string `json:"name"`
	// Choice is the resolved auto backend with rationale, e.g.
	// "dfa (auto: 11 device states, 8 symbol classes: ...)".
	Choice string `json:"choice"`
	AutoNS int64  `json:"auto_ns"`
	NFANS  int64  `json:"nfa_ns"`
	// DFANS is 0 when the configuration does not support the lazy DFA
	// (forced compile fails); ParallelNS is always measured.
	DFANS      int64 `json:"dfa_ns,omitempty"`
	ParallelNS int64 `json:"parallel_ns"`
	// BestBackend/BestNS name the fastest forced backend; the acceptance
	// gate bounds AutoNS against BestNS.
	BestBackend  string  `json:"best_backend"`
	BestNS       int64   `json:"best_ns"`
	SpeedupVsNFA float64 `json:"speedup_vs_nfa"`
	// Lazy-DFA cache telemetry from the auto engine (zero unless auto
	// chose the DFA): resident states, transition-cache hit rate, and how
	// often a scan fell back to NFA stepping on cache blowup.
	DFAStates    int64   `json:"dfa_states,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	Fallbacks    int64   `json:"fallbacks,omitempty"`
	OutputOK     bool    `json:"output_ok"`
}

// FprintMetaStudy renders the backend-selection table. The rows come from
// metastudy.MetaStudy, which lives in its own package because it drives
// the public façade (same layering as the prefilter study).
func FprintMetaStudy(w io.Writer, rows []MetaRow) {
	fprintf(w, "Meta-engine: auto backend selection vs forced backends (output equality checked per row)\n")
	fprintf(w, "%-18s %-10s %8s %8s %8s %8s %7s %8s %6s %8s\n",
		"Benchmark", "choice", "auto ms", "nfa ms", "dfa ms", "par ms", "vs nfa", "hit rate", "fallbk", "output")
	for _, r := range rows {
		verdict := "OK"
		if !r.OutputOK {
			verdict = "DIVERGED"
		}
		choice := r.Choice
		if i := len(choice); i > 10 {
			// The rationale is in the JSON; the table keeps the name.
			for j, c := range choice {
				if c == ' ' {
					i = j
					break
				}
			}
			choice = choice[:i]
		}
		dfaMS := "-"
		if r.DFANS > 0 {
			dfaMS = fmt.Sprintf("%.2f", float64(r.DFANS)/1e6)
		}
		fprintf(w, "%-18s %-10s %8.2f %8.2f %8s %8.2f %6.2fx %7.1f%% %6d %8s\n",
			r.Name, choice, float64(r.AutoNS)/1e6, float64(r.NFANS)/1e6, dfaMS,
			float64(r.ParallelNS)/1e6, r.SpeedupVsNFA, 100*r.CacheHitRate,
			r.Fallbacks, verdict)
	}
}

// metaGateNoiseFloorNS is the smallest absolute gap the slowdown gate
// acts on. Sub-millisecond scans put a 10% ratio inside wall-clock timer
// noise (a 30µs jitter on a 70µs scan is 40%), so the gate only fires
// when auto trails the best forced backend by both the fraction and at
// least this much real time.
const metaGateNoiseFloorNS = 500_000

// CheckMetaStudy enforces the study's acceptance gates: every row's output
// must be identical across backends, and with maxSlowdown > 0 the auto
// choice must never be more than that fraction slower than the best forced
// backend (the meta-engine's central promise: auto costs at most noise).
func CheckMetaStudy(rows []MetaRow, maxSlowdown float64) error {
	for _, r := range rows {
		if !r.OutputOK {
			return fmt.Errorf("backend selection changed the output of %s", r.Name)
		}
		if maxSlowdown > 0 && r.BestNS > 0 &&
			r.AutoNS-r.BestNS > metaGateNoiseFloorNS &&
			float64(r.AutoNS) > float64(r.BestNS)*(1+maxSlowdown) {
			return fmt.Errorf("auto backend on %s is %.2fms vs best forced (%s) %.2fms, over the %.0f%% budget",
				r.Name, float64(r.AutoNS)/1e6, r.BestBackend, float64(r.BestNS)/1e6, 100*maxSlowdown)
		}
	}
	return nil
}
