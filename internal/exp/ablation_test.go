package exp

import (
	"strings"
	"testing"
)

func TestAblationRate(t *testing.T) {
	rows, err := AblationRate(testOpts, []string{"Snort", "ExactMatch", "SPM"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Higher rate → strictly higher raw throughput.
		if !(r.Throughput[0] < r.Throughput[1] && r.Throughput[1] < r.Throughput[2]) {
			t.Errorf("%s: throughput not increasing: %v", r.Name, r.Throughput)
		}
		// 1-nibble should cost more states than 2-nibble.
		if r.States[0] <= r.States[1] {
			t.Errorf("%s: 1-nibble states %d not above 2-nibble %d", r.Name, r.States[0], r.States[1])
		}
	}
	var sb strings.Builder
	FprintAblationRate(&sb, rows)
	if !strings.Contains(sb.String(), "Gbps/PU") {
		t.Error("print missing header")
	}
}

func TestAblationReportWidth(t *testing.T) {
	rows, err := AblationReportWidth(testOpts, []int{8, 12, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wider entries → smaller capacity.
	for i := 1; i < len(rows); i++ {
		if rows[i].RegionCapacity >= rows[i-1].RegionCapacity {
			t.Errorf("capacity not decreasing with m: %+v", rows)
		}
	}
	var sb strings.Builder
	FprintAblationReportWidth(&sb, rows)
	if !strings.Contains(sb.String(), "capacity") {
		t.Error("print missing header")
	}
}

func TestAblationCover(t *testing.T) {
	rows, err := AblationCover(testOpts, []string{"Protomata", "Snort"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Saving < 1.0 {
			t.Errorf("%s: naive cover beat grouped (%.2f)", r.Name, r.Saving)
		}
	}
	var sb strings.Builder
	FprintAblationCover(&sb, rows)
	if !strings.Contains(sb.String(), "grouped") {
		t.Error("print missing header")
	}
}
