package exp

import (
	"runtime"
	"strings"
	"testing"
)

// TestParallelSpeedupMultiCore asserts the throughput acceptance bar —
// 8 workers at least 2x sequential on a mesh workload — wherever the host
// can physically deliver it. On fewer than 4 cores wall-clock speedup is
// capped near 1x by definition, so the test skips (the differential suite
// still proves output identity there).
func TestParallelSpeedupMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for wall-clock speedup, have %d", runtime.NumCPU())
	}
	opts := Options{Scale: 0.05, InputLen: 1 << 18}
	rows, err := ScalingStudy(opts, []string{"Hamming"}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !r.OutputOK || !r.Sharded {
		t.Fatalf("8-worker Hamming run: sharded=%v outputOK=%v", r.Sharded, r.OutputOK)
	}
	if r.Speedup < 2 {
		t.Errorf("8-worker speedup %.2fx, want >= 2x (seq %.1f ms, par %.1f ms)",
			r.Speedup, float64(r.SeqNS)/1e6, float64(r.ParNS)/1e6)
	}
}

// TestScalingStudy runs the study at tiny scale on one shardable (mesh)
// and one unbounded (cyclic) benchmark: the mesh workload must shard, the
// cyclic one must fall back, and both must reproduce the sequential output.
func TestScalingStudy(t *testing.T) {
	opts := Options{Scale: 0.05, InputLen: 20000}
	rows, err := ScalingStudy(opts, []string{"Hamming", "Dotstar03"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.OutputOK {
			t.Errorf("%s workers=%d: parallel output diverged from sequential", r.Name, r.Workers)
		}
		if r.SeqNS <= 0 || r.ParNS <= 0 {
			t.Errorf("%s workers=%d: non-positive timing %d/%d", r.Name, r.Workers, r.SeqNS, r.ParNS)
		}
		switch r.Name {
		case "Hamming":
			if r.Workers == 2 && !r.Sharded {
				t.Errorf("Hamming workers=2 did not shard")
			}
		case "Dotstar03":
			if r.Sharded {
				t.Errorf("Dotstar03 (cyclic) claimed to shard")
			}
		}
	}
	var sb strings.Builder
	FprintScalingStudy(&sb, rows)
	for _, want := range []string{"speedup", "Hamming", "Dotstar03", "OK"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered study missing %q:\n%s", want, sb.String())
		}
	}
	if strings.Contains(sb.String(), "DIVERGED") {
		t.Errorf("rendered study reports divergence:\n%s", sb.String())
	}
}
