package exp

import (
	"testing"

	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

// TestMachineMatchesFuncsimOnBenchmarks is the end-to-end integration
// check on real workloads: for a spread of benchmark families and rates,
// the architectural simulator must produce exactly the functional
// simulator's reports, and both must match the original byte automaton.
func TestMachineMatchesFuncsimOnBenchmarks(t *testing.T) {
	cases := []struct {
		name string
		rate int
	}{
		{"Snort", 4},
		{"Brill", 2},
		{"SPM", 4},
		{"Hamming", 2},
		{"Levenshtein", 1},
		{"Protomata", 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := workload.MustGet(c.name, 0.005, 3000)
			ua, err := transform.ToRate(w.Automaton, c.rate)
			if err != nil {
				t.Fatal(err)
			}
			// Transformation equivalence against the byte automaton.
			if err := transform.EquivalentOnInput(w.Automaton, ua, w.Input); err != nil {
				t.Fatalf("transform: %v", err)
			}
			// Machine equivalence against the unit simulator.
			m, err := buildMachine(w, c.rate, core.DefaultConfig(c.rate))
			if err != nil {
				t.Fatal(err)
			}
			units := funcsim.BytesToUnits(w.Input, 4)
			want := funcsim.NewUnitSimulator(ua).Run(units, funcsim.Options{RecordEvents: true})
			got := m.Run(units, core.RunOptions{RecordEvents: true})
			if want.Reports != got.Reports || want.ReportCycles != got.ReportCycles {
				t.Fatalf("machine %d reports/%d cycles, funcsim %d/%d",
					got.Reports, got.ReportCycles, want.Reports, want.ReportCycles)
			}
			type key struct {
				unit   int64
				origin int32
			}
			count := map[key]int{}
			for _, ev := range want.Events {
				count[key{ev.Unit, ev.Origin}]++
			}
			for _, ev := range got.Events {
				count[key{ev.Unit, ev.Origin}]--
			}
			for k, v := range count {
				if v != 0 {
					t.Fatalf("event multiset mismatch at %+v (delta %d)", k, v)
				}
			}
		})
	}
}
