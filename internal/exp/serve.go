package exp

import (
	"fmt"
	"io"
)

// ServeRow measures the network scan service on one benchmark's input
// stream: end-to-end HTTP throughput and latency, with every response
// checked against a local reference Engine.Scan on the same bytes. Like
// the scaling study, the measured quantity is host-side service
// performance (request handling + simulation), not modeled device
// throughput.
//
// Rows are produced by loadgen.ServeStudy; only the row type and its
// rendering live here so that Results (and BENCH_serve.json) stay in one
// package without exp importing the facade (the root package's benchmark
// harness imports exp in-package, so exp must not import sunder back).
type ServeRow struct {
	Name     string `json:"name"`
	Bytes    int    `json:"bytes"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	TotalNS  int64  `json:"total_ns"`
	// MBps is aggregate scan throughput over the wall clock of the client
	// phase (all clients together).
	MBps  float64 `json:"mbps"`
	P50NS int64   `json:"p50_ns"`
	P99NS int64   `json:"p99_ns"`
	// SrvP50NS/SrvP99NS/SrvP999NS are the server-side handler latency
	// quantiles for this benchmark's requests, fetched from the service's
	// /metrics?format=json after the client phase. They exclude client and
	// loopback overhead, so client p50 >= server p50 always; the gap is the
	// HTTP/serialization cost. Estimated from log-bucket histograms under
	// the same nearest-rank rule as the exact client-side quantiles.
	SrvP50NS  int64 `json:"srv_p50_ns,omitempty"`
	SrvP99NS  int64 `json:"srv_p99_ns,omitempty"`
	SrvP999NS int64 `json:"srv_p999_ns,omitempty"`
	// PoolWaitShare is the fraction of server-side served time spent
	// waiting for a pooled engine — the queueing share of latency.
	PoolWaitShare float64 `json:"pool_wait_share,omitempty"`
	// Matches is the per-request match count (identical across requests —
	// every request scans the same input).
	Matches int64 `json:"matches"`
	// Failed requests split into two honest buckets instead of aborting
	// the study: TransportErrors (connection refused/reset, unreadable
	// body) and HTTPErrors (non-200 statuses — 503 sheds, 504 deadline
	// misses). Availability is the served fraction, (Requests-Failed)/
	// Requests; quantiles and MBps cover only served requests.
	Failed          int     `json:"failed"`
	TransportErrors int     `json:"transport_errors"`
	HTTPErrors      int     `json:"http_errors"`
	Availability    float64 `json:"availability"`
	// OutputOK asserts every batched response, and StreamOK the NDJSON
	// stream, reproduced the local reference scan match-for-match.
	OutputOK bool `json:"output_ok"`
	StreamOK bool `json:"stream_ok"`
}

// FprintServeStudy renders the serve rows as a table: client-side
// latency quantiles (exact, over raw request latencies) beside the
// server-side handler quantiles and the pool-wait share of served time.
func FprintServeStudy(w io.Writer, rows []ServeRow) {
	fmt.Fprintf(w, "Network scan service load test (clients x requests per benchmark, checked against local Scan)\n")
	fmt.Fprintf(w, "%-14s %9s %8s %6s %6s %7s %10s %10s %10s %10s %10s %10s %7s %9s %6s %6s\n",
		"Benchmark", "Bytes", "Reqs", "xport", "http", "avail%", "MB/s", "p50(ms)", "p99(ms)",
		"sp50(ms)", "sp99(ms)", "sp999(ms)", "wait%", "Matches", "Out", "Strm")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9d %8d %6d %6d %7.2f %10.2f %10.3f %10.3f %10.3f %10.3f %10.3f %7.1f %9d %6v %6v\n",
			r.Name, r.Bytes, r.Requests, r.TransportErrors, r.HTTPErrors, r.Availability*100, r.MBps,
			float64(r.P50NS)/1e6, float64(r.P99NS)/1e6,
			float64(r.SrvP50NS)/1e6, float64(r.SrvP99NS)/1e6, float64(r.SrvP999NS)/1e6,
			r.PoolWaitShare*100,
			r.Matches, r.OutputOK, r.StreamOK)
	}
}
