package exp

import (
	"strings"
	"testing"
)

func TestCheckMetaStudyGates(t *testing.T) {
	bad := []MetaRow{{Name: "x", Choice: "dfa (auto: small)", OutputOK: false}}
	if err := CheckMetaStudy(bad, 0); err == nil {
		t.Error("diverged output must fail the check")
	}
	slow := []MetaRow{{
		Name: "y", Choice: "nfa (auto: fallback)", OutputOK: true,
		AutoNS: 15e6, BestNS: 10e6, BestBackend: "dfa",
	}}
	if err := CheckMetaStudy(slow, 0.10); err == nil {
		t.Error("auto 50% over the best forced backend must fail the 10% gate")
	}
	if err := CheckMetaStudy(slow, 0); err != nil {
		t.Errorf("no budget set: %v", err)
	}
	within := []MetaRow{{
		Name: "z", Choice: "dfa (auto: small)", OutputOK: true,
		AutoNS: 10.5e6, BestNS: 10e6, BestBackend: "dfa",
	}}
	if err := CheckMetaStudy(within, 0.10); err != nil {
		t.Errorf("auto within the budget: %v", err)
	}
	// A large relative gap on a microsecond-scale scan is timer noise, not
	// a selection error: the absolute floor must keep the gate quiet.
	noise := []MetaRow{{
		Name: "w", Choice: "dfa (auto: small)", OutputOK: true,
		AutoNS: 100_000, BestNS: 70_000, BestBackend: "dfa",
	}}
	if err := CheckMetaStudy(noise, 0.10); err != nil {
		t.Errorf("sub-floor absolute gap must not trip the gate: %v", err)
	}
	var sb strings.Builder
	FprintMetaStudy(&sb, append(bad, within...))
	if !strings.Contains(sb.String(), "DIVERGED") {
		t.Errorf("table must flag diverged rows:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "dfa") {
		t.Errorf("table must print the choice:\n%s", sb.String())
	}
}
