package exp

import (
	"strings"
	"testing"

	"sunder/internal/faults"
)

// TestFaultStudySmoke runs the study on one benchmark with low transient
// rates: every injected fault must be recovered and the output must equal
// the fault-free reference.
func TestFaultStudySmoke(t *testing.T) {
	opts := DefaultOptions()
	opts.InputLen = 4096
	pol := faults.DefaultPolicy()
	pol.Seed = 12
	pol.CheckpointInterval = 64
	// Low rates keep at most one flip per entry per window: per-entry
	// parity guarantees detection of single-bit corruption only.
	pol.MatchFlipRate = 0.002
	pol.ReportFlipRate = 0.0005
	rows, err := FaultStudy(opts, []string{"ExactMatch"}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Injected == 0 {
		t.Fatal("no faults injected at these rates (seed-dependent; adjust seed)")
	}
	if r.Detected == 0 || r.Coverage != 1 {
		t.Fatalf("injected %d but detected %d (coverage %v)", r.Injected, r.Detected, r.Coverage)
	}
	if r.Recoveries == 0 || r.Slowdown <= 1 {
		t.Fatalf("recoveries %d, slowdown %v; expected re-execution", r.Recoveries, r.Slowdown)
	}
	if !r.OutputOK {
		t.Fatal("recovered output diverged from fault-free reference")
	}

	var sb strings.Builder
	FprintFaultStudy(&sb, rows, pol)
	if !strings.Contains(sb.String(), "ExactMatch") || !strings.Contains(sb.String(), "OK") {
		t.Errorf("rendered study:\n%s", sb.String())
	}
}

// TestFaultStudyCleanDevice: with no injection the study is a pure
// detection overlay — zero slowdown, output intact.
func TestFaultStudyCleanDevice(t *testing.T) {
	opts := DefaultOptions()
	opts.InputLen = 2048
	rows, err := FaultStudy(opts, []string{"ExactMatch"}, faults.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Injected != 0 || r.Detected != 0 || r.Recoveries != 0 || r.Slowdown != 1 || !r.OutputOK {
		t.Fatalf("clean-device row = %+v", r)
	}
}
