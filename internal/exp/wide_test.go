package exp

import (
	"strings"
	"testing"
)

func TestWideStudy(t *testing.T) {
	row, err := WideStudy(20, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if row.WideReports == 0 || row.ByteReports == 0 {
		t.Fatalf("no reports: %+v", row)
	}
	// Both encodings recognize the same language on item-aligned input;
	// report counts must agree.
	if row.WideReports != row.ByteReports {
		t.Errorf("wide %d reports, byte %d", row.WideReports, row.ByteReports)
	}
	// The wide path consumes one symbol per cycle; the byte path needs
	// two cycles per symbol at the same 16-bit rate.
	if row.WideSymbolsPerCycle < 0.99 || row.WideSymbolsPerCycle > 1.01 {
		t.Errorf("wide symbols/cycle = %v, want 1.0", row.WideSymbolsPerCycle)
	}
	if row.ByteSymbolsPerCycle > 0.51 {
		t.Errorf("byte symbols/cycle = %v, want 0.5", row.ByteSymbolsPerCycle)
	}
	var sb strings.Builder
	FprintWideStudy(&sb, row)
	if !strings.Contains(sb.String(), "byte pairs") {
		t.Error("print missing rows")
	}
}
