package exp

import (
	"io"

	"sunder/internal/automata"
	"sunder/internal/core"
	"sunder/internal/funcsim"
	"sunder/internal/hotcold"
	"sunder/internal/report"
	"sunder/internal/workload"
)

// HotColdRow quantifies the Section 1 claim that Sunder's reporting is
// complementary to Liu et al.'s hot/cold splitting: the split shrinks the
// configured automaton but adds intermediate-report traffic, which the AP's
// hierarchical buffers pay for in stalls and Sunder's in-place region
// absorbs.
type HotColdRow struct {
	Name             string
	CapacityFrac     float64
	HotStates        int
	ColdStates       int
	BoundaryStates   int
	IntermediatePerK float64 // intermediate reports per 1000 input bytes
	SunderOverhead   float64 // machine overhead with intermediate reports included
	APOverhead       float64 // AP reporting model on the same trace
}

// HotColdStudy splits each benchmark at the given capacity fraction
// (hardware states / total states), using the first third of the input for
// profiling and the rest for evaluation.
func HotColdStudy(opts Options, names []string, capacityFrac float64) ([]HotColdRow, error) {
	var rows []HotColdRow
	for _, name := range names {
		w, err := workload.Get(name, opts.Scale, opts.InputLen)
		if err != nil {
			return nil, err
		}
		training := w.Input[:len(w.Input)/3]
		eval := w.Input[len(w.Input)/3:]
		prof := hotcold.Profile(w.Automaton, training)
		capacity := int(float64(w.Automaton.NumStates()) * capacityFrac)
		if capacity < 1 {
			capacity = 1
		}
		split, err := hotcold.SplitByCapacity(w.Automaton, prof, capacity)
		if err != nil {
			return nil, err
		}
		row := HotColdRow{
			Name:           name,
			CapacityFrac:   capacityFrac,
			HotStates:      split.HotStates,
			ColdStates:     split.ColdStates,
			BoundaryStates: split.BoundaryStates,
		}
		traffic := split.MeasureTraffic(eval)
		row.IntermediatePerK = 1000 * float64(traffic.IntermediateReports) / float64(len(eval))

		// Sunder: run the restricted automaton (boundary states are
		// report states now) on the machine.
		hwWorkload := &workload.Workload{Spec: w.Spec, Automaton: split.Hardware, Input: eval}
		m, err := buildMachineTel(hwWorkload, 4, core.DefaultConfig(4), opts.Telemetry)
		if err != nil {
			return nil, err
		}
		mres := m.Run(funcsim.BytesToUnits(eval, 4), core.RunOptions{})
		row.SunderOverhead = mres.Overhead()

		// AP: same trace through the hierarchical model.
		p := report.DefaultParams()
		ap := report.NewAP(split.Hardware, p)
		sim := funcsim.NewByteSimulator(split.Hardware)
		fres := sim.Run(eval, funcsim.Options{
			OnReportCycle: func(cycle int64, states []automata.StateID) {
				ap.OnReportCycle(cycle, states)
			},
		})
		row.APOverhead = ap.Result().Overhead(fres.Cycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintHotColdStudy renders the study.
func FprintHotColdStudy(w io.Writer, rows []HotColdRow) {
	fprintf(w, "Extension: hot/cold splitting (Liu et al.) + reporting cost of intermediate reports\n")
	fprintf(w, "%-18s %6s | %6s %6s %6s | %10s | %9s %9s\n", "Benchmark", "cap%",
		"hot", "cold", "bound", "interm/KB", "Sunder", "AP")
	for _, r := range rows {
		fprintf(w, "%-18s %5.0f%% | %6d %6d %6d | %10.1f | %8.2fx %8.2fx\n",
			r.Name, 100*r.CapacityFrac, r.HotStates, r.ColdStates, r.BoundaryStates,
			r.IntermediatePerK, r.SunderOverhead, r.APOverhead)
	}
}
