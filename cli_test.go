package sunder

// End-to-end smoke tests of the command-line tools: build each binary and
// run a fast invocation, checking for the expected output markers.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()

	compile := buildTool(t, dir, "sunder/cmd/sunder-compile")
	out := run(t, compile, "-demo")
	for _, want := range []string{"Figure 3", "1-bit automaton", "16-bit automaton"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-compile -demo missing %q:\n%s", want, out)
		}
	}
	out = run(t, compile, "-pattern", "a(b|c)d", "-rate", "2", "-dot", filepath.Join(dir, "dots"))
	for _, want := range []string{"8-bit (input)", "8-bit (2 nibbles)", "placement", "byte.dot"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-compile missing %q:\n%s", want, out)
		}
	}

	sim := buildTool(t, dir, "sunder/cmd/sunder-sim")
	out = run(t, sim, "-list")
	if !strings.Contains(out, "Snort") || !strings.Contains(out, "SPM") {
		t.Errorf("sunder-sim -list:\n%s", out)
	}
	out = run(t, sim, "-benchmark", "Bro217", "-scale", "0.01", "-input", "4000")
	for _, want := range []string{"functional simulation", "Sunder @", "AP+RAD"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-sim missing %q:\n%s", want, out)
		}
	}

	// Observability flags: -metrics dumps device counters, -trace writes a
	// valid Chrome trace_event file, -cpuprofile/-memprofile write profiles.
	tracePath := filepath.Join(dir, "trace.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	out = run(t, sim, "-benchmark", "Bro217", "-scale", "0.01", "-input", "4000",
		"-metrics", "-trace", tracePath, "-cpuprofile", cpuPath, "-memprofile", memPath)
	for _, want := range []string{"device counters:", "device_kernel_cycles", `pu_flushes{pu="0"}`, "wrote", "trace events"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-sim -metrics/-trace missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace output not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("-trace output has no events")
	}
	for _, path := range []string{cpuPath, memPath} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", path, err)
		}
	}

	bench := buildTool(t, dir, "sunder/cmd/sunder-bench")
	out = run(t, bench, "-table", "5")
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, "AP (50nm)") {
		t.Errorf("sunder-bench -table 5:\n%s", out)
	}
	out = run(t, bench, "-fig", "9")
	if !strings.Contains(out, "Figure 9") {
		t.Errorf("sunder-bench -fig 9:\n%s", out)
	}
	out = run(t, bench, "-table", "4", "-scale", "0.01", "-input", "2000", "-metrics")
	for _, want := range []string{"Table 4", "device counters:", "device_kernel_cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-bench -metrics missing %q:\n%s", want, out)
		}
	}

	gen := buildTool(t, dir, "sunder/cmd/sunder-gen")
	suiteDir := filepath.Join(dir, "suite")
	out = run(t, gen, "-out", suiteDir, "-benchmark", "Bro217", "-scale", "0.01", "-input", "2000")
	if !strings.Contains(out, "Bro217.anml") {
		t.Errorf("sunder-gen:\n%s", out)
	}
	// The generated ANML must load back through the compiler CLI.
	out = run(t, compile, "-anml", filepath.Join(suiteDir, "Bro217.anml"), "-rate", "1")
	if !strings.Contains(out, "8-bit (input)") {
		t.Errorf("sunder-compile -anml:\n%s", out)
	}
}
