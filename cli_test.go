package sunder

// End-to-end smoke tests of the command-line tools: build each binary and
// run a fast invocation, checking for the expected output markers.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()

	compile := buildTool(t, dir, "sunder/cmd/sunder-compile")
	out := run(t, compile, "-demo")
	for _, want := range []string{"Figure 3", "1-bit automaton", "16-bit automaton"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-compile -demo missing %q:\n%s", want, out)
		}
	}
	out = run(t, compile, "-pattern", "a(b|c)d", "-rate", "2", "-dot", filepath.Join(dir, "dots"))
	for _, want := range []string{"8-bit (input)", "8-bit (2 nibbles)", "placement", "byte.dot"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-compile missing %q:\n%s", want, out)
		}
	}

	sim := buildTool(t, dir, "sunder/cmd/sunder-sim")
	out = run(t, sim, "-list")
	if !strings.Contains(out, "Snort") || !strings.Contains(out, "SPM") {
		t.Errorf("sunder-sim -list:\n%s", out)
	}
	out = run(t, sim, "-benchmark", "Bro217", "-scale", "0.01", "-input", "4000")
	for _, want := range []string{"functional simulation", "Sunder @", "AP+RAD"} {
		if !strings.Contains(out, want) {
			t.Errorf("sunder-sim missing %q:\n%s", want, out)
		}
	}

	bench := buildTool(t, dir, "sunder/cmd/sunder-bench")
	out = run(t, bench, "-table", "5")
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, "AP (50nm)") {
		t.Errorf("sunder-bench -table 5:\n%s", out)
	}
	out = run(t, bench, "-fig", "9")
	if !strings.Contains(out, "Figure 9") {
		t.Errorf("sunder-bench -fig 9:\n%s", out)
	}

	gen := buildTool(t, dir, "sunder/cmd/sunder-gen")
	suiteDir := filepath.Join(dir, "suite")
	out = run(t, gen, "-out", suiteDir, "-benchmark", "Bro217", "-scale", "0.01", "-input", "2000")
	if !strings.Contains(out, "Bro217.anml") {
		t.Errorf("sunder-gen:\n%s", out)
	}
	// The generated ANML must load back through the compiler CLI.
	out = run(t, compile, "-anml", filepath.Join(suiteDir, "Bro217.anml"), "-rate", "1")
	if !strings.Contains(out, "8-bit (input)") {
		t.Errorf("sunder-compile -anml:\n%s", out)
	}
}
