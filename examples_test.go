package sunder

// Smoke tests for the runnable examples: each must build and execute
// successfully, producing its expected output markers.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		pkg     string
		markers []string
	}{
		{"sunder/examples/quickstart", []string{"rule 1 matched", "verified"}},
		{"sunder/examples/netids", []string{"ALERT rule", "stall-free", "Gbit/s"}},
		{"sunder/examples/genomics", []string{"rate reconfiguration", "TATA box", "motif hits"}},
		{"sunder/examples/datamining", []string{"exact mode", "summarized mode"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.pkg, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.pkg, err, out)
			}
			for _, m := range c.markers {
				if !strings.Contains(string(out), m) {
					t.Errorf("%s output missing %q:\n%s", c.pkg, m, out)
				}
			}
		})
	}
}
