package sunder

import (
	"errors"

	"sunder/internal/funcsim"
	"sunder/internal/prefilter"
	"sunder/internal/sched"
)

// ErrDeferredBufferFull is returned by Stream.Write on a prefiltered stream
// over an automaton with an unbounded dependence window when the deferred-
// start buffer reaches its cap (maxDeferredUnits) without a literal hit.
// Such a stream cannot bound the warm-up replay a future hit would need, so
// instead of silently buffering without limit it stops accepting input; the
// error is sticky (further writes return it) and Close remains valid and
// idempotent — everything written so far was proven match-free, so the
// returned statistics count those cycles as skipped.
var ErrDeferredBufferFull = errors.New(
	"sunder: prefilter deferred-start buffer full (unbounded dependence window, no literal hit)")

// streamFilter is the incremental literal prefilter behind Stream when the
// engine compiled with Options.Prefilter. It scans arriving bytes for the
// required literals, executes the device only inside candidate windows
// (warm-up replayed from buffered history), and skips everything else,
// while keeping the match stream and the Reports/ReportCycles accounting
// byte-identical to an unfiltered stream.
//
// Decision finality: a window's start is anchored at the *end* byte of the
// literal occurrence, so an occurrence not yet seen can only create
// windows at or beyond the current completion frontier. Holding execution
// back align+1 cycles behind the frontier therefore makes every skip
// decision final — a later chunk can never un-skip a cycle, including a
// candidate window straddling the chunk boundary (the window simply opens
// once the straddling literal's end arrives, and its warm-up replays from
// the history buffer across the boundary).
//
// With an unbounded dependence window (cyclic automaton) warm-up cannot be
// bounded, so the filter defers instead: units are buffered unexecuted
// until the first literal hit, at which point the machine replays the
// whole buffer (provably silent before the hit) and the stream goes live,
// executing everything from then on. A hit-free stream skips every cycle.
type streamFilter struct {
	s *Stream
	p *prefilterPlan

	// carry holds the last maxLit-1 raw bytes so literals straddling a
	// Write boundary are still found; scanned is the absolute byte offset
	// the scanner has covered.
	carry   []byte
	scanned int64

	// hist buffers input units for warm-up replay (bounded mode trims it
	// to the dependence window behind the decision frontier; deferred mode
	// keeps everything until live). histBase is the absolute unit index of
	// hist[0].
	hist     []funcsim.Unit
	histBase int64

	// spans are pending candidate windows, Start-ordered; proc is the next
	// cycle to decide; hot reports that the machine state equals the
	// sequential state entering cycle proc.
	spans []sched.CycleSpan
	proc  int64
	hot   bool

	// live is the deferred-start switch for unbounded automata.
	live bool

	// Accounting. kernel counts executed owned cycles, skipped the cycles
	// proven match-free; stall/flushes accumulate machine counters
	// harvested before each window reset.
	kernel  int64
	skipped int64
	stall   int64
	flushes int64
	hits    int64
	windows int64
}

// maxDeferredUnits caps the deferred-start buffer of unbounded automata:
// reaching it without a hit surfaces ErrDeferredBufferFull from Write,
// bounding memory.
const maxDeferredUnits = 4 << 20

func newStreamFilter(s *Stream) *streamFilter {
	// A previous filtered stream's window warm-up may have left
	// start-of-data injection suppressed on the shared machine; a fresh
	// stream starts at true input start.
	s.eng.machine.SuppressStartOfData(false)
	return &streamFilter{s: s, p: s.eng.pre, hot: true}
}

// write scans the chunk for literals and advances execution up to the
// decision frontier. The only error it can return is ErrDeferredBufferFull
// (unbounded automata whose deferred-start buffer hits the cap).
func (f *streamFilter) write(p []byte) error {
	f.scanChunk(p)
	f.hist = append(f.hist, funcsim.BytesToUnits(p, 4)...)
	if !f.p.bounded {
		return f.advanceDeferred()
	}
	complete := (f.histBase + int64(len(f.hist))) / int64(f.p.rate)
	limit := complete - f.p.align - 1
	if limit > 0 {
		f.advance(limit)
	}
	f.trim()
	return nil
}

// scanChunk runs the literal scanner over carry+chunk, keeping only
// occurrences that end inside the new bytes (the rest were counted by the
// previous call), and converts them to candidate cycle spans.
func (f *streamFilter) scanChunk(p []byte) {
	data := p
	base := f.scanned
	if len(f.carry) > 0 {
		data = append(f.carry, p...)
		base -= int64(len(f.carry))
	}
	f.p.scanner.Scan(data, func(q, e int) {
		if base+int64(e) <= f.scanned {
			return
		}
		f.hits++
		f.spans = append(f.spans, f.p.hitSpan(int(base)+q, int(base)+e))
	})
	f.scanned += int64(len(p))
	if keep := f.p.maxLit - 1; keep > 0 {
		if len(data) < keep {
			keep = len(data)
		}
		f.carry = append(f.carry[:0], data[len(data)-keep:]...)
	}
}

// vec returns the unit vector of the absolute cycle c from the history
// buffer.
func (f *streamFilter) vec(c int64) []funcsim.Unit {
	off := c*int64(f.p.rate) - f.histBase
	return f.hist[off : off+int64(f.p.rate)]
}

// advance decides every cycle below limit: skip it, or execute it inside a
// window (opening the window with a silent warm-up replay when the machine
// is cold).
func (f *streamFilter) advance(limit int64) {
	for f.proc < limit {
		// Drop spans fully behind the frontier (their cycles executed).
		for len(f.spans) > 0 && f.spans[0].End <= f.proc {
			f.spans = f.spans[1:]
		}
		if len(f.spans) == 0 {
			f.skip(limit)
			return
		}
		sp := f.spans[0]
		start := sp.Start - sp.Start%f.p.align
		if start > f.proc {
			// A short gap is cheaper to execute through than to re-warm
			// after; skip only gaps wider than the warm-up window.
			if !f.hot || start-f.proc > f.p.overlap {
				f.skip(min64(start, limit))
				if f.proc >= limit {
					return
				}
				continue
			}
		}
		if !f.hot {
			f.openWindow(f.proc)
		}
		end := min64(roundUp(sp.End, f.p.align), limit)
		if end <= f.proc {
			// Span tail beyond the frontier: wait for more input.
			return
		}
		f.exec(f.proc, end)
	}
}

func (f *streamFilter) skip(to int64) {
	if to > f.proc {
		f.skipped += to - f.proc
		f.proc = to
		f.hot = false
	}
}

// exec steps cycles [from, to) with emission through the stream's
// deduplicating emit, exactly as the unfiltered stream does.
func (f *streamFilter) exec(from, to int64) {
	m := f.s.eng.machine
	for c := from; c < to; c++ {
		f.s.scratch = m.Step(f.vec(c), f.s.scratch[:0])
		f.kernel++
		if len(f.s.scratch) > 0 {
			f.s.emit(c, f.s.scratch)
		}
	}
	f.proc = to
	f.hot = true
}

// openWindow prepares the cold machine for owned execution at cycle start:
// counters are harvested, the machine reset, and the dependence window
// replayed silently from the history buffer. Mid-stream bases suppress
// start-of-data injection exactly like batch shard warm-up.
func (f *streamFilter) openWindow(start int64) {
	m := f.s.eng.machine
	f.stall += m.StallCycles()
	f.flushes += m.Flushes()
	col := f.s.eng.telemetryCollector()
	if col != nil {
		m.AttachTelemetry(nil)
	}
	m.Reset()
	base := start - f.p.overlap
	if base < 0 {
		base = 0
	}
	base -= base % f.p.align
	if base*int64(f.p.rate) < f.histBase {
		base = (f.histBase + int64(f.p.rate) - 1) / int64(f.p.rate)
	}
	m.SuppressStartOfData(base > 0)
	for c := base; c < start; c++ {
		f.s.scratch = m.Step(f.vec(c), f.s.scratch[:0])
	}
	if col != nil {
		m.AttachTelemetry(col)
	}
	f.windows++
}

// trim drops history the warm-up of any future window can no longer reach:
// windows open at or after proc, so units older than overlap+2·align
// cycles behind it are dead. The buffer is compacted only when the dead
// prefix dominates, amortizing the copy.
func (f *streamFilter) trim() {
	keepFrom := (f.proc - f.p.overlap - 2*f.p.align - 2) * int64(f.p.rate)
	if keepFrom <= f.histBase {
		return
	}
	dead := keepFrom - f.histBase
	if dead*2 < int64(len(f.hist)) {
		return
	}
	n := copy(f.hist, f.hist[dead:])
	f.hist = f.hist[:n]
	f.histBase = keepFrom
}

// advanceDeferred is the unbounded-dependence path: buffer until a hit,
// then replay everything and stay live. Reaching the buffer cap without a
// hit is ErrDeferredBufferFull: going live at that point would silently
// degrade the stream into unfiltered execution over an arbitrarily large
// replay, so the condition surfaces to the caller instead.
func (f *streamFilter) advanceDeferred() error {
	if !f.live {
		if len(f.spans) == 0 && f.hits == 0 {
			if len(f.hist) > maxDeferredUnits {
				return ErrDeferredBufferFull
			}
			return nil
		}
		f.live = true
		f.windows++
	}
	complete := (f.histBase + int64(len(f.hist))) / int64(f.p.rate)
	// Replay/execute with emission: the pre-hit prefix contains no literal,
	// hence no match, hence no report — emission is provably silent there.
	f.exec(f.proc, complete)
	return nil
}

// close pads the final vector, folds in the pad-tail hazard, executes the
// remaining undecided cycles and returns the filtered stream statistics.
func (f *streamFilter) close() Stats {
	su := f.p.su
	totalUnits := f.scanned * int64(su)
	padded := roundUp(totalUnits, int64(f.p.rate))
	padUnits := int(padded - totalUnits)
	for i := 0; i < padUnits; i++ {
		f.hist = append(f.hist, funcsim.Pad)
	}
	totalCycles := padded / int64(f.p.rate)
	if padUnits > 0 && f.p.maxLit > 0 {
		padBytes := (padUnits + su - 1) / su
		tail := f.carry
		if prefilter.TailHitFold(tail, f.p.lits, padBytes, f.p.fold) {
			// A literal can complete inside the pad: phantom pad reports
			// fire in the final cycle of an unfiltered run and must be
			// counted here identically.
			f.spans = append(f.spans, sched.CycleSpan{Start: totalCycles - 1, End: totalCycles})
			f.hits++
		}
	}
	if f.p.bounded {
		f.advance(totalCycles)
	} else {
		if f.live || f.hits > 0 {
			f.advanceDeferred()
		}
		if !f.live {
			// No literal ever hit (including a possibly over-cap wedged
			// stream): every buffered cycle is provably match-free.
			f.skip(totalCycles)
		}
	}
	m := f.s.eng.machine
	notePrefilter(f.s.eng.telemetryCollector(), f.hits, f.windows, f.kernel, f.skipped)
	return Stats{
		KernelCycles:     f.kernel,
		StallCycles:      f.stall + m.StallCycles(),
		Flushes:          f.flushes + m.Flushes(),
		Reports:          f.s.reports,
		ReportCycles:     f.s.reportCycles,
		PrefilterWindows: f.windows,
		SkippedCycles:    f.skipped,
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func roundUp(v, align int64) int64 {
	if align <= 1 {
		return v
	}
	if r := v % align; r != 0 {
		return v + align - r
	}
	return v
}
