package sunder

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func cachePatterns(tag int) []Pattern {
	return []Pattern{
		{Expr: fmt.Sprintf("ab%dc", tag), Code: 1},
		{Expr: "x[yz]x", Code: 2},
	}
}

// TestCompileCachedEquivalence: an engine from a cache hit scans
// identically to a freshly compiled one.
func TestCompileCachedEquivalence(t *testing.T) {
	ResetCompileCache()
	pats := []Pattern{{Expr: "abca", Code: 1}, {Expr: "b[cd]+a", Code: 2}}
	fresh, err := Compile(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	miss, err := CompileCached(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hit, err := CompileCached(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("zabcabcday"), 800)
	want, err := fresh.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	for label, eng := range map[string]*Engine{"miss": miss, "hit": hit} {
		got, err := eng.Scan(input)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		sameScan(t, label, got, want)
		if got.Stats != want.Stats {
			t.Errorf("%s: Stats = %+v, want %+v", label, got.Stats, want.Stats)
		}
		// The cached engine supports the parallel path too.
		par, err := eng.ScanParallel(input, ScanOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", label, err)
		}
		sameScan(t, label+" parallel", par, want)
	}
}

// TestCompileCachedStats: hits and misses are counted, distinct rule sets
// and distinct options occupy distinct entries, and the Rate default is
// normalized into the key.
func TestCompileCachedStats(t *testing.T) {
	ResetCompileCache()
	before := CompileCacheInfo()

	pats := cachePatterns(0)
	if _, err := CompileCached(pats, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileCached(pats, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Options{} and an explicit default rate are the same configuration.
	o := DefaultOptions()
	o.Rate = 4
	if _, err := CompileCached(pats, o); err != nil {
		t.Fatal(err)
	}
	// A different rate is a different machine.
	o.Rate = 2
	if _, err := CompileCached(pats, o); err != nil {
		t.Fatal(err)
	}
	// A different rule set is a different entry.
	if _, err := CompileCached(cachePatterns(1), DefaultOptions()); err != nil {
		t.Fatal(err)
	}

	st := CompileCacheInfo()
	if hits := st.Hits - before.Hits; hits != 2 {
		t.Errorf("Hits = %d, want 2", hits)
	}
	if misses := st.Misses - before.Misses; misses != 3 {
		t.Errorf("Misses = %d, want 3", misses)
	}
	if st.Entries != 3 {
		t.Errorf("Entries = %d, want 3", st.Entries)
	}
	if st.Capacity != DefaultCompileCacheCapacity {
		t.Errorf("Capacity = %d, want %d", st.Capacity, DefaultCompileCacheCapacity)
	}
}

// TestCompileCachedEviction: capacity bounds the cache, and shrinking it
// evicts the least recently used rule sets.
func TestCompileCachedEviction(t *testing.T) {
	ResetCompileCache()
	SetCompileCacheCapacity(2)
	defer SetCompileCacheCapacity(DefaultCompileCacheCapacity)

	for i := 0; i < 4; i++ {
		if _, err := CompileCached(cachePatterns(i), DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if n := CompileCacheInfo().Entries; n != 2 {
		t.Fatalf("Entries = %d, want 2", n)
	}
	before := CompileCacheInfo()
	// Sets 2 and 3 survive; set 0 was evicted and must miss again.
	if _, err := CompileCached(cachePatterns(3), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileCached(cachePatterns(0), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	st := CompileCacheInfo()
	if hits := st.Hits - before.Hits; hits != 1 {
		t.Errorf("Hits = %d, want 1", hits)
	}
	if misses := st.Misses - before.Misses; misses != 1 {
		t.Errorf("Misses = %d, want 1", misses)
	}
}

// TestCompileCachedErrorNotCached: a failing rule set is recompiled (and
// fails again) rather than occupying a cache slot.
func TestCompileCachedErrorNotCached(t *testing.T) {
	ResetCompileCache()
	bad := []Pattern{{Expr: "a(b", Code: 1}}
	if _, err := CompileCached(bad, DefaultOptions()); err == nil {
		t.Fatal("compile of unbalanced group succeeded")
	}
	if n := CompileCacheInfo().Entries; n != 0 {
		t.Errorf("Entries = %d after failed compile, want 0", n)
	}
	if _, err := CompileCached(bad, DefaultOptions()); err == nil {
		t.Fatal("second compile of unbalanced group succeeded")
	}
}

// TestCompileCachedConcurrent hammers the cache from many goroutines over
// a small working set; every returned engine must scan correctly.
func TestCompileCachedConcurrent(t *testing.T) {
	ResetCompileCache()
	SetCompileCacheCapacity(3) // smaller than the working set: forces races on evict+refill
	defer SetCompileCacheCapacity(DefaultCompileCacheCapacity)

	input := bytes.Repeat([]byte("ab0cab1cab2cab3cab4c"), 200)
	wants := make([]*ScanResult, 5)
	for i := range wants {
		eng, err := Compile(cachePatterns(i), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if wants[i], err = eng.Scan(input); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				set := (g + i) % 5
				eng, err := CompileCached(cachePatterns(set), DefaultOptions())
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got, err := eng.Scan(input)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				sameScan(t, fmt.Sprintf("goroutine %d set %d", g, set), got, wants[set])
			}
		}(g)
	}
	wg.Wait()
}
