package sunder

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func cachePatterns(tag int) []Pattern {
	return []Pattern{
		{Expr: fmt.Sprintf("ab%dc", tag), Code: 1},
		{Expr: "x[yz]x", Code: 2},
	}
}

// TestCompileCachedEquivalence: an engine from a cache hit scans
// identically to a freshly compiled one.
func TestCompileCachedEquivalence(t *testing.T) {
	ResetCompileCache()
	pats := []Pattern{{Expr: "abca", Code: 1}, {Expr: "b[cd]+a", Code: 2}}
	fresh, err := Compile(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	miss, err := CompileCached(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hit, err := CompileCached(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("zabcabcday"), 800)
	want, err := fresh.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	for label, eng := range map[string]*Engine{"miss": miss, "hit": hit} {
		got, err := eng.Scan(input)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		sameScan(t, label, got, want)
		if got.Stats != want.Stats {
			t.Errorf("%s: Stats = %+v, want %+v", label, got.Stats, want.Stats)
		}
		// The cached engine supports the parallel path too.
		par, err := eng.ScanParallel(input, ScanOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", label, err)
		}
		sameScan(t, label+" parallel", par, want)
	}
}

// TestCompileCachedStats: hits and misses are counted, distinct rule sets
// and distinct options occupy distinct entries, and the Rate default is
// normalized into the key.
func TestCompileCachedStats(t *testing.T) {
	ResetCompileCache()
	before := CompileCacheInfo()

	pats := cachePatterns(0)
	if _, err := CompileCached(pats, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileCached(pats, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Options{} and an explicit default rate are the same configuration.
	o := DefaultOptions()
	o.Rate = 4
	if _, err := CompileCached(pats, o); err != nil {
		t.Fatal(err)
	}
	// A different rate is a different machine.
	o.Rate = 2
	if _, err := CompileCached(pats, o); err != nil {
		t.Fatal(err)
	}
	// A different rule set is a different entry.
	if _, err := CompileCached(cachePatterns(1), DefaultOptions()); err != nil {
		t.Fatal(err)
	}

	st := CompileCacheInfo()
	if hits := st.Hits - before.Hits; hits != 2 {
		t.Errorf("Hits = %d, want 2", hits)
	}
	if misses := st.Misses - before.Misses; misses != 3 {
		t.Errorf("Misses = %d, want 3", misses)
	}
	if st.Entries != 3 {
		t.Errorf("Entries = %d, want 3", st.Entries)
	}
	if st.Capacity != DefaultCompileCacheCapacity {
		t.Errorf("Capacity = %d, want %d", st.Capacity, DefaultCompileCacheCapacity)
	}
}

// TestCompileCachedEviction: capacity bounds the cache, and shrinking it
// evicts the least recently used rule sets.
func TestCompileCachedEviction(t *testing.T) {
	ResetCompileCache()
	SetCompileCacheCapacity(2)
	defer SetCompileCacheCapacity(DefaultCompileCacheCapacity)

	for i := 0; i < 4; i++ {
		if _, err := CompileCached(cachePatterns(i), DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if n := CompileCacheInfo().Entries; n != 2 {
		t.Fatalf("Entries = %d, want 2", n)
	}
	before := CompileCacheInfo()
	// Sets 2 and 3 survive; set 0 was evicted and must miss again.
	if _, err := CompileCached(cachePatterns(3), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileCached(cachePatterns(0), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	st := CompileCacheInfo()
	if hits := st.Hits - before.Hits; hits != 1 {
		t.Errorf("Hits = %d, want 1", hits)
	}
	if misses := st.Misses - before.Misses; misses != 1 {
		t.Errorf("Misses = %d, want 1", misses)
	}
}

// TestCompileCachedErrorNotCached: a failing rule set is recompiled (and
// fails again) rather than occupying a cache slot.
func TestCompileCachedErrorNotCached(t *testing.T) {
	ResetCompileCache()
	bad := []Pattern{{Expr: "a(b", Code: 1}}
	if _, err := CompileCached(bad, DefaultOptions()); err == nil {
		t.Fatal("compile of unbalanced group succeeded")
	}
	if n := CompileCacheInfo().Entries; n != 0 {
		t.Errorf("Entries = %d after failed compile, want 0", n)
	}
	if _, err := CompileCached(bad, DefaultOptions()); err == nil {
		t.Fatal("second compile of unbalanced group succeeded")
	}
}

// prunablePatterns is a rule set on which Options.Prune provably removes
// states: the `a.` alternative subsumes `ab`, so the `ab` chain is dead.
func prunablePatterns() []Pattern {
	return []Pattern{
		{Expr: `(ab|a.)c`, Code: 1},
		{Expr: `xy+z`, Code: 2},
	}
}

// TestCompileCachedPruneDistinct is the regression test for the
// compile-key collision: a pruned and an unpruned compile of the same
// patterns must occupy distinct cache entries. Before the fix,
// CompileCached(p, {Prune:true}) after CompileCached(p, {Prune:false})
// returned the unpruned machine.
func TestCompileCachedPruneDistinct(t *testing.T) {
	ResetCompileCache()
	pats := prunablePatterns()
	unpruned, err := CompileCached(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	popts := DefaultOptions()
	popts.Prune = true
	pruned, err := CompileCached(pats, popts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Compile(pats, popts)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Info().PrunedStates == 0 {
		t.Fatal("test rule set no longer prunes any state; pick a prunable one")
	}
	if got, want := pruned.Info().DeviceStates, fresh.Info().DeviceStates; got != want {
		t.Errorf("cached pruned engine has %d device states, fresh pruned compile has %d (cache key collision)", got, want)
	}
	if got, want := pruned.Info().PrunedStates, fresh.Info().PrunedStates; got != want {
		t.Errorf("cached pruned engine reports %d pruned states, want %d", got, want)
	}
	if pruned.Info().DeviceStates >= unpruned.Info().DeviceStates {
		t.Errorf("pruned engine (%d states) not smaller than unpruned (%d)",
			pruned.Info().DeviceStates, unpruned.Info().DeviceStates)
	}
	// Both configurations are now resident: re-requesting the unpruned one
	// must hit its own entry, not the pruned machine.
	again, err := CompileCached(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := again.Info().DeviceStates, unpruned.Info().DeviceStates; got != want {
		t.Errorf("unpruned re-request returned %d device states, want %d", got, want)
	}
	if n := CompileCacheInfo().Entries; n != 2 {
		t.Errorf("Entries = %d, want 2 (pruned and unpruned must not share a slot)", n)
	}
	input := bytes.Repeat([]byte("zabcaxcxyyz"), 500)
	want, err := fresh.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pruned.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	sameScan(t, "cached pruned", got, want)
}

// TestCompileCachedPrunedStatesOnHitAndClone: Info().PrunedStates survives
// the cache-hit path and Engine.Clone (both used to drop it to zero).
func TestCompileCachedPrunedStatesOnHitAndClone(t *testing.T) {
	ResetCompileCache()
	popts := DefaultOptions()
	popts.Prune = true
	miss, err := CompileCached(prunablePatterns(), popts)
	if err != nil {
		t.Fatal(err)
	}
	want := miss.Info().PrunedStates
	if want == 0 {
		t.Fatal("test rule set no longer prunes any state; pick a prunable one")
	}
	hit, err := CompileCached(prunablePatterns(), popts)
	if err != nil {
		t.Fatal(err)
	}
	if got := hit.Info().PrunedStates; got != want {
		t.Errorf("cache hit: Info().PrunedStates = %d, want %d", got, want)
	}
	for label, eng := range map[string]*Engine{"miss": miss, "hit": hit} {
		if got := eng.Clone().Info().PrunedStates; got != want {
			t.Errorf("%s clone: Info().PrunedStates = %d, want %d", label, got, want)
		}
	}
}

// TestCompileCachedMinimizeOnHitAndClone: the certified-minimization
// digest (Info().MergedStates / SymbolClasses, and the prune rounds folded
// into PrunedStates) survives the cache-hit path and Engine.Clone, and a
// minimized compile occupies its own cache entry.
func TestCompileCachedMinimizeOnHitAndClone(t *testing.T) {
	ResetCompileCache()
	mopts := DefaultOptions()
	mopts.Minimize = true
	pats := prunablePatterns()
	miss, err := CompileCached(pats, mopts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CompileCached(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := CompileCacheInfo().Entries; n != 2 {
		t.Errorf("Entries = %d, want 2 (minimized and plain must not share a slot)", n)
	}
	info := miss.Info()
	if info.SymbolClasses == 0 {
		t.Error("minimized compile reports zero symbol classes")
	}
	if info.PrunedStates == 0 {
		t.Error("minimize on a prunable rule set removed no states")
	}
	if got := plain.Info().SymbolClasses; got != 0 {
		t.Errorf("unminimized compile reports %d symbol classes, want 0", got)
	}
	hit, err := CompileCached(pats, mopts)
	if err != nil {
		t.Fatal(err)
	}
	for label, eng := range map[string]*Engine{"hit": hit, "miss clone": miss.Clone(), "hit clone": hit.Clone()} {
		got := eng.Info()
		if got.PrunedStates != info.PrunedStates || got.MergedStates != info.MergedStates || got.SymbolClasses != info.SymbolClasses {
			t.Errorf("%s: Info() pruned/merged/classes = %d/%d/%d, want %d/%d/%d", label,
				got.PrunedStates, got.MergedStates, got.SymbolClasses,
				info.PrunedStates, info.MergedStates, info.SymbolClasses)
		}
	}
}

// TestCompileKeyCoversOptions enumerates Options by reflection and asserts
// that perturbing any single field changes the cache key — the proof
// obligation of DESIGN.md §4.11: a future compile-affecting Options field
// that is not hashed into compileKey fails here instead of silently
// aliasing cache entries (how the Prune bug happened).
func TestCompileKeyCoversOptions(t *testing.T) {
	pats := cachePatterns(0)
	// Base values chosen so every perturbation below lands on a distinct
	// normalized value (Rate 1→2 avoids the 0→4 default normalization).
	base := Options{Rate: 1, ReportColumns: 13, MetadataBits: 21}
	baseKey := compileKey(pats, base)
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		field := typ.Field(i)
		o := base
		fv := reflect.ValueOf(&o).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			fv.SetFloat(fv.Float() + 1)
		case reflect.String:
			fv.SetString(fv.String() + "x")
		default:
			t.Fatalf("Options.%s has kind %s this coverage test cannot perturb; hash it in compileKey and teach the test", field.Name, fv.Kind())
		}
		if compileKey(pats, o) == baseKey {
			t.Errorf("compileKey ignores Options.%s: two different configurations would share a cache entry", field.Name)
		}
	}
}

// TestCompileCachedConcurrentMixedPrune hammers the cache from many
// goroutines with mixed Prune options over a small working set under
// -race: hit/miss counts must stay consistent, and every returned engine
// must report the right PrunedStates and scan identically to a fresh
// compile of the same configuration.
func TestCompileCachedConcurrentMixedPrune(t *testing.T) {
	ResetCompileCache()
	SetCompileCacheCapacity(3) // below the 9-config working set: evict+refill races
	defer SetCompileCacheCapacity(DefaultCompileCacheCapacity)

	input := bytes.Repeat([]byte("zabcaxcxyyzab0cab1cab2c"), 300)
	type config struct {
		pats   []Pattern
		opts   Options
		want   *ScanResult
		pruned int
		merged int
	}
	var configs []config
	for set := 0; set < 3; set++ {
		pats := prunablePatterns()
		pats = append(pats, cachePatterns(set)...)
		for _, variant := range []struct{ prune, minimize bool }{{false, false}, {true, false}, {false, true}} {
			opts := DefaultOptions()
			opts.Prune = variant.prune
			opts.Minimize = variant.minimize
			eng, err := Compile(pats, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.Scan(input)
			if err != nil {
				t.Fatal(err)
			}
			configs = append(configs, config{pats: pats, opts: opts, want: want,
				pruned: eng.Info().PrunedStates, merged: eng.Info().MergedStates})
			if (variant.prune || variant.minimize) && eng.Info().PrunedStates == 0 {
				t.Fatal("pruned config removes no states; the hammer would not distinguish the machines")
			}
		}
	}
	before := CompileCacheInfo()
	const goroutines, iters = 8, 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := configs[(g+i)%len(configs)]
				eng, err := CompileCached(c.pats, c.opts)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got := eng.Info().PrunedStates; got != c.pruned {
					t.Errorf("goroutine %d: PrunedStates = %d, want %d (prune=%v minimize=%v)", g, got, c.pruned, c.opts.Prune, c.opts.Minimize)
					return
				}
				if got := eng.Info().MergedStates; got != c.merged {
					t.Errorf("goroutine %d: MergedStates = %d, want %d (minimize=%v)", g, got, c.merged, c.opts.Minimize)
					return
				}
				got, err := eng.Scan(input)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				sameScan(t, fmt.Sprintf("goroutine %d iter %d prune=%v", g, i, c.opts.Prune), got, c.want)
			}
		}(g)
	}
	wg.Wait()
	st := CompileCacheInfo()
	lookups := int64(goroutines * iters)
	if got := (st.Hits - before.Hits) + (st.Misses - before.Misses); got != lookups {
		t.Errorf("hits+misses = %d, want %d lookups", got, lookups)
	}
	if misses := st.Misses - before.Misses; misses < int64(len(configs)) {
		t.Errorf("misses = %d, want at least one per distinct configuration (%d)", misses, len(configs))
	}
	if st.Entries > 3 {
		t.Errorf("Entries = %d exceeds capacity 3", st.Entries)
	}
}

// TestCompileCachedConcurrent hammers the cache from many goroutines over
// a small working set; every returned engine must scan correctly.
func TestCompileCachedConcurrent(t *testing.T) {
	ResetCompileCache()
	SetCompileCacheCapacity(3) // smaller than the working set: forces races on evict+refill
	defer SetCompileCacheCapacity(DefaultCompileCacheCapacity)

	input := bytes.Repeat([]byte("ab0cab1cab2cab3cab4c"), 200)
	wants := make([]*ScanResult, 5)
	for i := range wants {
		eng, err := Compile(cachePatterns(i), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if wants[i], err = eng.Scan(input); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				set := (g + i) % 5
				eng, err := CompileCached(cachePatterns(set), DefaultOptions())
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got, err := eng.Scan(input)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				sameScan(t, fmt.Sprintf("goroutine %d set %d", g, set), got, wants[set])
			}
		}(g)
	}
	wg.Wait()
}
