// sunder-bench regenerates every table and figure of the paper's evaluation
// (Section 7) from simulation, plus the repository's ablation studies.
//
// Usage:
//
//	sunder-bench                 # everything at reduced scale
//	sunder-bench -full           # paper scale (1MB inputs, full automata)
//	sunder-bench -table 4        # one table (1,2,3,4,5)
//	sunder-bench -fig 10         # one figure (8,9,10)
//	sunder-bench -ablations      # ablation studies only
//	sunder-bench -par            # parallel scaling study (workers vs speedup)
//	sunder-bench -par -json > BENCH_parallel.json
//	sunder-bench -prune          # dead-state pruning study (footprint + output equality)
//	sunder-bench -faults match=1e-4,report=1e-4,stuck=2,seed=1
//	sunder-bench -scale 0.05 -input 50000
//	sunder-bench -table 4 -metrics -trace /tmp/t4.json -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sunder/internal/cliutil"
	"sunder/internal/exp"
	"sunder/internal/exp/metastudy"
	"sunder/internal/exp/prefilterstudy"
	"sunder/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sunder-bench: ")
	var (
		table      = flag.Int("table", 0, "regenerate one table (1-5); 0 = per -all")
		fig        = flag.Int("fig", 0, "regenerate one figure (8-10); 0 = per -all")
		ablations  = flag.Bool("ablations", false, "run the ablation studies")
		extensions = flag.Bool("extensions", false, "run the extension studies (power, hot/cold splitting)")
		full       = flag.Bool("full", false, "paper scale: full-size automata, 1MB input (slow)")
		scale      = flag.Float64("scale", 0, "override benchmark scale (0,1]")
		inputLen   = flag.Int("input", 0, "override input length in bytes")
		jsonOut    = flag.Bool("json", false, "emit every table and figure as JSON instead of text")
		prune      = flag.Bool("prune", false, "run the dead-state pruning study across all benchmarks")
		pruneRate  = flag.Int("prunerate", 4, "processing rate for the -prune/-minimize study (1,2,4)")
		minimize   = flag.Bool("minimize", false, "run the certified minimization study (compression ratio, certificate verification); fails on certificate rejection or output divergence")
		prefilter  = flag.Bool("prefilter", false, "run the literal-prefilter study across all benchmarks")
		prefMin    = flag.Float64("prefilter-min-speedup", 0, "fail unless every engaged benchmark beats this speedup on literal-free input")
		meta       = flag.Bool("meta", false, "run the meta-engine backend-selection study across all benchmarks")
		metaMax    = flag.Float64("meta-max-slowdown", 0, "fail if auto is more than this fraction slower than the best forced backend (e.g. 0.10)")
		beFlags    = cliutil.RegisterBackendFlag()
		telFlags   = cliutil.RegisterTelemetryFlags()
		faultFlags = cliutil.RegisterFaultFlags()
		parFlags   = cliutil.RegisterParallelFlags()
		profiles   = cliutil.ProfileFlags()
	)
	flag.Parse()
	if err := beFlags.Validate(); err != nil {
		log.Fatal(err)
	}

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}

	opts := exp.DefaultOptions()
	if *full {
		opts = exp.FullOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *inputLen > 0 {
		opts.InputLen = *inputLen
	}
	opts.Backend = beFlags.Backend
	// The collector aggregates device counters and trace events across
	// every machine the selected experiments build.
	col := telFlags.Collector()
	opts.Telemetry = col

	out := os.Stdout
	// finish emits any requested telemetry and finalizes profiles; it runs
	// on every success path (JSON mode returns early).
	finish := func() {
		if err := telFlags.Emit(out, col); err != nil {
			log.Fatal(err)
		}
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}
	// The scaling study's benchmark set: mesh and exact-match workloads
	// that shard, plus one cyclic workload demonstrating the fallback.
	scalingNames := []string{"Hamming", "Levenshtein", "ExactMatch", "Dotstar03"}
	scalingWorkers := []int{1, 2, 4, 8}
	if parFlags.Workers > 0 {
		scalingWorkers = []int{parFlags.Workers}
	}
	if *jsonOut {
		if *meta {
			rows, err := metastudy.MetaStudy(opts, workload.Names())
			if err != nil {
				log.Fatal(err)
			}
			res := &exp.Results{Options: opts, Meta: rows}
			if err := res.WriteJSON(out); err != nil {
				log.Fatal(err)
			}
			if err := exp.CheckMetaStudy(rows, *metaMax); err != nil {
				log.Fatal(err)
			}
			finish()
			return
		}
		if *prefilter {
			rows, err := prefilterstudy.PrefilterStudy(opts, workload.Names())
			if err != nil {
				log.Fatal(err)
			}
			res := &exp.Results{Options: opts, Prefilter: rows}
			if err := res.WriteJSON(out); err != nil {
				log.Fatal(err)
			}
			if err := exp.CheckPrefilterStudy(rows, *prefMin); err != nil {
				log.Fatal(err)
			}
			finish()
			return
		}
		if *prune || *minimize {
			rows, err := exp.PruningStudy(opts, workload.Names(), *pruneRate)
			if err != nil {
				log.Fatal(err)
			}
			res := &exp.Results{Options: opts, Pruning: rows}
			if err := res.WriteJSON(out); err != nil {
				log.Fatal(err)
			}
			if *minimize {
				// Minimization numbers are only publishable if every
				// certificate verified and no output diverged.
				if err := exp.CheckMinimizeStudy(rows); err != nil {
					log.Fatal(err)
				}
			}
			finish()
			return
		}
		if parFlags.Enabled() {
			rows, err := exp.ScalingStudy(opts, scalingNames, scalingWorkers)
			if err != nil {
				log.Fatal(err)
			}
			res := &exp.Results{Options: opts, Scaling: rows}
			if err := res.WriteJSON(out); err != nil {
				log.Fatal(err)
			}
			finish()
			return
		}
		n := 160000
		if *full {
			n = 1 << 20
		}
		res, err := exp.CollectAll(opts, n)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteJSON(out); err != nil {
			log.Fatal(err)
		}
		finish()
		return
	}
	// The fault study runs only when a policy is given (like -ablations
	// and the -par scaling study, it is excluded from the default
	// everything run).
	runAll := *table == 0 && *fig == 0 && !*ablations && !*extensions && !faultFlags.Enabled() && !parFlags.Enabled() && !*prune && !*minimize && !*prefilter && !*meta

	var t4 []exp.Table4Row
	needT4 := runAll || *table == 4 || *fig == 8
	if needT4 {
		var err error
		t4, err = exp.Table4(opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	if runAll || *table == 1 {
		rows, err := exp.Table1(opts)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintTable1(out, rows, opts)
		fmt.Fprintln(out)
	}
	if runAll || *table == 2 {
		exp.FprintTable2(out)
		fmt.Fprintln(out)
	}
	if runAll || *table == 3 {
		rows, err := exp.Table3(opts)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintTable3(out, rows, opts)
		fmt.Fprintln(out)
	}
	if runAll || *table == 4 {
		exp.FprintTable4(out, t4, opts)
		fmt.Fprintln(out)
	}
	if runAll || *table == 5 {
		exp.FprintTable5(out, exp.Table5())
		fmt.Fprintln(out)
	}
	if runAll || *fig == 8 {
		exp.FprintFigure8(out, exp.Figure8(t4))
		fmt.Fprintln(out)
	}
	if runAll || *fig == 9 {
		exp.FprintFigure9(out, exp.Figure9())
		fmt.Fprintln(out)
	}
	if runAll || *fig == 10 {
		n := 160000
		if *full {
			n = 1 << 20
		}
		pts, err := exp.Figure10(n)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintFigure10(out, pts, n)
		fmt.Fprintln(out)
	}
	if runAll || *ablations {
		names := []string{"Snort", "ExactMatch", "SPM", "Protomata"}
		rate, err := exp.AblationRate(opts, names)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintAblationRate(out, rate)
		fmt.Fprintln(out)

		widths, err := exp.AblationReportWidth(opts, []int{8, 12, 16, 24})
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintAblationReportWidth(out, widths)
		fmt.Fprintln(out)

		cover, err := exp.AblationCover(opts, names)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintAblationCover(out, cover)
		fmt.Fprintln(out)
	}
	if parFlags.Enabled() {
		rows, err := exp.ScalingStudy(opts, scalingNames, scalingWorkers)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintScalingStudy(out, rows)
		fmt.Fprintln(out)
	}
	if *prune || *minimize {
		rows, err := exp.PruningStudy(opts, workload.Names(), *pruneRate)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintPruningStudy(out, rows)
		fmt.Fprintln(out)
		for _, r := range rows {
			if !r.OutputOK {
				log.Fatalf("pruning changed the output of %s at rate %d", r.Name, r.Rate)
			}
		}
		if *minimize {
			if err := exp.CheckMinimizeStudy(rows); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *prefilter {
		rows, err := prefilterstudy.PrefilterStudy(opts, workload.Names())
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintPrefilterStudy(out, rows)
		fmt.Fprintln(out)
		if err := exp.CheckPrefilterStudy(rows, *prefMin); err != nil {
			log.Fatal(err)
		}
	}
	if *meta {
		rows, err := metastudy.MetaStudy(opts, workload.Names())
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintMetaStudy(out, rows)
		fmt.Fprintln(out)
		if err := exp.CheckMetaStudy(rows, *metaMax); err != nil {
			log.Fatal(err)
		}
	}
	if faultFlags.Enabled() {
		pol, err := faultFlags.Policy()
		if err != nil {
			log.Fatal(err)
		}
		rows, err := exp.FaultStudy(opts, []string{"Snort", "ExactMatch", "SPM", "Protomata"}, pol)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintFaultStudy(out, rows, pol)
		fmt.Fprintln(out)
	}
	if runAll || *extensions {
		names := []string{"Brill", "Snort", "TCP", "SPM", "ClamAV"}
		power, err := exp.PowerStudy(opts, names)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintPowerStudy(out, power)
		fmt.Fprintln(out)

		hc, err := exp.HotColdStudy(opts, []string{"Brill", "Snort", "Protomata"}, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintHotColdStudy(out, hc)
		fmt.Fprintln(out)

		wide, err := exp.WideStudy(40, 3, 20000)
		if err != nil {
			log.Fatal(err)
		}
		exp.FprintWideStudy(out, wide)
	}
	finish()
}
