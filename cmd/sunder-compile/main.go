// sunder-compile inspects the transformation pipeline: it compiles patterns
// (or loads ANML), shows the state/transition cost of every stage (8-bit →
// 1-bit → 4-bit → strided), and can emit Graphviz DOT for each stage.
//
// Usage:
//
//	sunder-compile -pattern 'a(b|c)+d' -pattern 'xyz'
//	sunder-compile -anml rules.anml -rate 2
//	sunder-compile -demo            # the paper's Figure 3 walkthrough
//	sunder-compile -pattern abc -dot /tmp/stages
//	sunder-compile -anml big.anml -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sunder/internal/analysis"
	"sunder/internal/automata"
	"sunder/internal/cliutil"
	"sunder/internal/mapping"
	"sunder/internal/regex"
	"sunder/internal/sched"
	"sunder/internal/transform"
)

type patternList []string

func (p *patternList) String() string     { return fmt.Sprint(*p) }
func (p *patternList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("sunder-compile: ")
	var (
		patterns patternList
		anmlPath = flag.String("anml", "", "load an ANML automata network instead of patterns")
		rate     = flag.Int("rate", 4, "target processing rate in nibbles/cycle (1,2,4)")
		dotDir   = flag.String("dot", "", "write Graphviz DOT files for each stage into this directory")
		demo     = flag.Bool("demo", false, "run the Figure 3 walkthrough (language A|BC)")
		anFlags  = cliutil.RegisterAnalysisFlags()
		profiles = cliutil.ProfileFlags()
	)
	flag.Var(&patterns, "pattern", "pattern to compile (repeatable)")
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	if *demo {
		figure3()
		return
	}

	var nfa *automata.Automaton
	switch {
	case *anmlPath != "":
		f, err := os.Open(*anmlPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		nfa, err = automata.ReadANML(f)
		if err != nil {
			log.Fatal(err)
		}
	case len(patterns) > 0:
		ps := make([]regex.Pattern, len(patterns))
		for i, expr := range patterns {
			ps[i] = regex.Pattern{Expr: expr, Code: int32(i + 1)}
		}
		var err error
		nfa, err = regex.CompileSet(ps)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -pattern, -anml, or -demo (see -help)")
	}

	fmt.Printf("%-22s %8s %8s %8s\n", "stage", "states", "edges", "reports")
	show := func(stage string, s, e, r int) {
		fmt.Printf("%-22s %8d %8d %8d\n", stage, s, e, r)
	}
	show("8-bit (input)", nfa.NumStates(), nfa.NumEdges(), nfa.NumReportStates())

	bin := transform.ToBinary(nfa)
	transform.Minimize(bin)
	show("1-bit (binary)", bin.NumStates(), bin.NumEdges(), bin.NumReportStates())

	nib := transform.ToNibble(nfa)
	transform.Minimize(nib)
	show("4-bit (1 nibble)", nib.NumStates(), nib.NumEdges(), nib.NumReportStates())

	stages := map[string]*automata.UnitAutomaton{"binary": bin, "nibble": nib}
	ua := nib
	for ua.Rate < *rate {
		var err error
		ua, err = transform.Stride2(ua)
		if err != nil {
			log.Fatal(err)
		}
		transform.Minimize(ua)
		label := fmt.Sprintf("%d-bit (%d nibbles)", 4*ua.Rate, ua.Rate)
		show(label, ua.NumStates(), ua.NumEdges(), ua.NumReportStates())
		stages[fmt.Sprintf("rate%d", ua.Rate)] = ua
	}

	if anFlags.Prune {
		res := analysis.Prune(ua)
		label := fmt.Sprintf("pruned (-%d states)", res.Removed())
		show(label, ua.NumStates(), ua.NumEdges(), ua.NumReportStates())
		fmt.Printf("    %d unreachable, %d useless, %d never-match, %d subsumed; %d report rows freed\n",
			res.Unreachable, res.Useless, res.NeverMatch, res.Subsumed, res.ReportRowsFreed)
	}

	if anFlags.Minimize {
		pre := ua.Clone()
		res := analysis.Minimize(ua)
		if err := analysis.CheckCertificate(pre, ua, res.Cert); err != nil {
			log.Fatalf("minimization certificate rejected: %v", err)
		}
		label := fmt.Sprintf("minimized (-%d states)", res.Removed())
		show(label, ua.NumStates(), ua.NumEdges(), ua.NumReportStates())
		fmt.Printf("    %d pruned, %d bisim-merged, %d prefix-merged in %d round(s); certificate verified (%d step(s))\n",
			res.Pruned, res.BisimMerged, res.PrefixMerged, res.Rounds, len(res.Cert.Steps))
		sc := analysis.SymbolClasses(nfa)
		if err := analysis.CheckSymbolClasses(nfa, sc); err != nil {
			log.Fatalf("symbol-class certificate rejected: %v", err)
		}
		fmt.Printf("    effective alphabet: %d symbol class(es) of 256 bytes\n", sc.Count())
	}

	if anFlags.Lint {
		rep := analysis.Analyze(ua, analysis.Options{Source: nfa})
		fmt.Printf("\nstatic analysis:\n")
		rep.WriteText(os.Stdout)
		if err := rep.Err(); err != nil {
			log.Fatalf("analysis failed: %v", err)
		}
	}

	if d, bounded := sched.DependenceCycles(ua); bounded {
		fmt.Printf("\ndependence window: %d cycle(s) — shardable for parallel scan\n", d)
	} else {
		fmt.Printf("\ndependence window: unbounded (cyclic automaton) — parallel scan falls back to sequential\n")
	}

	if place, err := mapping.Place(ua, 12); err == nil {
		st := place.ComputeStats(ua)
		fmt.Printf("\nplacement: %d PU(s) in %d cluster(s), %d cross-PU edges\n",
			st.NumPUs, st.NumClusters, st.CrossPUEdges)
	} else {
		fmt.Printf("\nplacement (m=12): %v\n", err)
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			log.Fatal(err)
		}
		write := func(name string, f func(*os.File) error) {
			path := filepath.Join(*dotDir, name)
			out, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := f(out); err != nil {
				log.Fatal(err)
			}
			out.Close()
			fmt.Println("wrote", path)
		}
		write("byte.dot", func(f *os.File) error { return automata.WriteDOT(f, nfa, "byte") })
		for name, a := range stages {
			a := a
			write(name+".dot", func(f *os.File) error { return automata.WriteUnitDOT(f, a, name) })
		}
	}
}

// figure3 reproduces the paper's Figure 3 on the language A|BC.
func figure3() {
	nfa := regex.MustCompile(`A|BC`, 1)
	fmt.Println("Figure 3 walkthrough: the 8-bit language A|BC")
	fmt.Printf("(a) 8-bit homogeneous NFA: %d states (A reports; B -> C reports)\n", nfa.NumStates())

	bin := transform.ToBinary(nfa)
	before := bin.NumStates()
	transform.Minimize(bin)
	fmt.Printf("(b) 1-bit automaton: %d states after minimization (%d before);\n",
		bin.NumStates(), before)
	fmt.Printf("    the first 6 bits of A (0x41) and B (0x42) merged into shared states\n")

	nib := transform.ToNibble(nfa)
	transform.Minimize(nib)
	fmt.Printf("(c) 4-bit automaton: %d states, one high-nibble STE feeding low-nibble STEs\n",
		nib.NumStates())

	four, err := transform.ToRate(nfa, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(d) 16-bit automaton (4-nibble vectors): %d states;\n", four.NumStates())
	fmt.Printf("    each state matches a vector of four 4-bit symbol sets (multi-row activation)\n")
	for i, s := range four.States {
		if i >= 6 {
			fmt.Printf("    ... %d more states\n", len(four.States)-6)
			break
		}
		fmt.Printf("    state %-3d match=[%04x %04x %04x %04x] start=%v reports=%d\n",
			i, s.Match[0], s.Match[1], s.Match[2], s.Match[3], s.Start != automata.StartNone, len(s.Reports))
	}
}
