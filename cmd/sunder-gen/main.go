// sunder-gen materializes the 19 benchmark stand-ins as files in the
// ANMLZoo layout — <name>.anml plus <name>.input — so they can be fed to
// external automata tools (VASim reads this ANML subset) or reloaded
// without regeneration.
//
// Usage:
//
//	sunder-gen -out ./suite                    # all benchmarks, default scale
//	sunder-gen -out ./suite -workers 8         # generate benchmarks in parallel
//	sunder-gen -out ./suite -benchmark Snort -scale 0.1 -input 100000
//	sunder-gen -check                          # verify every benchmark, write nothing
//
// -check generates every benchmark in memory, compiles it to the device
// rate, and runs the static IR analyzer (structure, liveness, nibble-chain
// consistency, capacity, shard safety, differential equivalence against the
// byte automaton on the benchmark's own input). Violations are printed as
// structured diagnostics and the tool exits non-zero — CI runs this as a
// gate on the generator suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sunder/internal/analysis"
	"sunder/internal/cliutil"
	"sunder/internal/sched"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sunder-gen: ")
	var (
		out      = flag.String("out", "suite", "output directory")
		name     = flag.String("benchmark", "", "generate one benchmark (default: all)")
		scale    = flag.Float64("scale", workload.DefaultScale, "benchmark scale (0,1]")
		inputLen = flag.Int("input", workload.DefaultInputLen, "input length in bytes")
		check    = flag.Bool("check", false, "run the static analyzer on every generated benchmark instead of writing files")
		rate     = flag.Int("rate", 4, "processing rate used by -check (1,2,4)")
		parFlags = cliutil.RegisterParallelFlags()
		profiles = cliutil.ProfileFlags()
	)
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	if *check {
		names := workload.Names()
		if *name != "" {
			names = []string{*name}
		}
		if code := checkAll(names, *scale, *inputLen, *rate, parFlags); code != 0 {
			// Flush profiles before the hard exit.
			if err := stopProfiles(); err != nil {
				log.Print(err)
			}
			os.Exit(code)
		}
		return
	}

	if *name != "" {
		w, err := workload.Get(*name, *scale, *inputLen)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s/%s.anml (%d states) and %s/%s.input (%d bytes)\n",
			*out, *name, w.Automaton.NumStates(), *out, *name, len(w.Input))
		return
	}
	if parFlags.Enabled() {
		// Benchmark generation is embarrassingly parallel: one pool task
		// per benchmark, each generating and saving independently.
		names := workload.Names()
		errs := make([]error, len(names))
		pool := sched.NewPool(parFlags.EffectiveWorkers(), len(names))
		for i, n := range names {
			i, n := i, n
			pool.Submit(func(int) {
				w, err := workload.Get(n, *scale, *inputLen)
				if err == nil {
					err = w.Save(*out)
				}
				errs[i] = err
			})
		}
		pool.Wait()
		for _, err := range errs {
			if err != nil {
				log.Fatal(err)
			}
		}
	} else if err := workload.SaveAll(*out, *scale, *inputLen); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s (scale %g, %d-byte inputs)\n",
		len(workload.Names()), *out, *scale, *inputLen)
}

// checkAll generates each named benchmark, compiles it to the device rate
// and analyzes the result; findings (warning or worse) are printed as
// structured diagnostics. Returns a non-zero exit code on any finding or
// generation failure.
func checkAll(names []string, scale float64, inputLen, rate int, parFlags *cliutil.ParallelFlags) int {
	type result struct {
		findings []analysis.Diagnostic
		info     string
		err      error
	}
	results := make([]result, len(names))
	checkOne := func(i int) {
		n := names[i]
		w, err := workload.Get(n, scale, inputLen)
		if err != nil {
			results[i].err = err
			return
		}
		ua, err := transform.ToRate(w.Automaton, rate)
		if err != nil {
			results[i].err = fmt.Errorf("%s: compile to rate %d: %w", n, rate, err)
			return
		}
		rep := analysis.Analyze(ua, analysis.Options{Source: w.Automaton, EquivSample: w.Input})
		results[i].findings = rep.Findings(analysis.SevWarn)
		results[i].info = fmt.Sprintf("%-18s %6d states, %4d report states, window %v: ok (%d prunable)",
			n, rep.States, rep.ReportStates, windowLabel(rep), rep.Prunable())
	}
	if parFlags.Enabled() {
		pool := sched.NewPool(parFlags.EffectiveWorkers(), len(names))
		for i := range names {
			i := i
			pool.Submit(func(int) { checkOne(i) })
		}
		pool.Wait()
	} else {
		for i := range names {
			checkOne(i)
		}
	}
	bad := 0
	for i, n := range names {
		r := results[i]
		switch {
		case r.err != nil:
			fmt.Printf("%-18s FAILED: %v\n", n, r.err)
			bad++
		case len(r.findings) > 0:
			fmt.Printf("%-18s %d finding(s):\n", n, len(r.findings))
			for _, d := range r.findings {
				fmt.Printf("  %s\n", d)
			}
			bad++
		default:
			fmt.Println(r.info)
		}
	}
	if bad > 0 {
		fmt.Printf("\n%d of %d benchmarks failed the analyzer gate\n", bad, len(names))
		return 1
	}
	fmt.Printf("\nall %d benchmarks pass the analyzer gate (rate %d, scale %g)\n", len(names), rate, scale)
	return 0
}

// windowLabel formats the shard-safety classification.
func windowLabel(rep *analysis.Report) string {
	if rep.Bounded {
		return fmt.Sprintf("%d", rep.DependenceWindow)
	}
	return "unbounded"
}
