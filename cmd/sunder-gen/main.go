// sunder-gen materializes the 19 benchmark stand-ins as files in the
// ANMLZoo layout — <name>.anml plus <name>.input — so they can be fed to
// external automata tools (VASim reads this ANML subset) or reloaded
// without regeneration.
//
// Usage:
//
//	sunder-gen -out ./suite                    # all benchmarks, default scale
//	sunder-gen -out ./suite -workers 8         # generate benchmarks in parallel
//	sunder-gen -out ./suite -benchmark Snort -scale 0.1 -input 100000
package main

import (
	"flag"
	"fmt"
	"log"

	"sunder/internal/cliutil"
	"sunder/internal/sched"
	"sunder/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sunder-gen: ")
	var (
		out      = flag.String("out", "suite", "output directory")
		name     = flag.String("benchmark", "", "generate one benchmark (default: all)")
		scale    = flag.Float64("scale", workload.DefaultScale, "benchmark scale (0,1]")
		inputLen = flag.Int("input", workload.DefaultInputLen, "input length in bytes")
		parFlags = cliutil.RegisterParallelFlags()
		profiles = cliutil.ProfileFlags()
	)
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	if *name != "" {
		w, err := workload.Get(*name, *scale, *inputLen)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s/%s.anml (%d states) and %s/%s.input (%d bytes)\n",
			*out, *name, w.Automaton.NumStates(), *out, *name, len(w.Input))
		return
	}
	if parFlags.Enabled() {
		// Benchmark generation is embarrassingly parallel: one pool task
		// per benchmark, each generating and saving independently.
		names := workload.Names()
		errs := make([]error, len(names))
		pool := sched.NewPool(parFlags.EffectiveWorkers(), len(names))
		for i, n := range names {
			i, n := i, n
			pool.Submit(func(int) {
				w, err := workload.Get(n, *scale, *inputLen)
				if err == nil {
					err = w.Save(*out)
				}
				errs[i] = err
			})
		}
		pool.Wait()
		for _, err := range errs {
			if err != nil {
				log.Fatal(err)
			}
		}
	} else if err := workload.SaveAll(*out, *scale, *inputLen); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s (scale %g, %d-byte inputs)\n",
		len(workload.Names()), *out, *scale, *inputLen)
}
