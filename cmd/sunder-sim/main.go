// sunder-sim runs one benchmark workload end to end: functional simulation
// for the reporting statistics, the Sunder architectural simulator at the
// chosen rate, and the AP / AP+RAD baselines for comparison.
//
// Usage:
//
//	sunder-sim -benchmark Snort
//	sunder-sim -benchmark SPM -rate 2 -fifo=false -scale 0.05 -input 100000
//	sunder-sim -benchmark Hamming -par -workers 8
//	sunder-sim -benchmark Snort -trace /tmp/t.json -metrics
//	sunder-sim -benchmark Snort -faults match=1e-4,report=1e-4,seed=1
//	sunder-sim -benchmark Snort -cpuprofile cpu.out -memprofile mem.out
//	sunder-sim -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sunder"
	"sunder/internal/analysis"
	"sunder/internal/automata"
	"sunder/internal/cliutil"
	"sunder/internal/core"
	"sunder/internal/exp"
	"sunder/internal/funcsim"
	"sunder/internal/mapping"
	"sunder/internal/report"
	"sunder/internal/sched"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sunder-sim: ")
	var (
		name       = flag.String("benchmark", "Snort", "benchmark name (see -list)")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		scale      = flag.Float64("scale", workload.DefaultScale, "benchmark scale (0,1]")
		inputLen   = flag.Int("input", workload.DefaultInputLen, "input length in bytes")
		rate       = flag.Int("rate", 4, "processing rate in nibbles/cycle (1,2,4)")
		fifo       = flag.Bool("fifo", true, "enable the FIFO report drain")
		summarize  = flag.Bool("summarize", false, "summarize on full instead of flushing")
		anFlags    = cliutil.RegisterAnalysisFlags()
		beFlags    = cliutil.RegisterBackendFlag()
		telFlags   = cliutil.RegisterTelemetryFlags()
		faultFlags = cliutil.RegisterFaultFlags()
		parFlags   = cliutil.RegisterParallelFlags()
		profiles   = cliutil.ProfileFlags()
	)
	flag.Parse()
	if err := beFlags.Validate(); err != nil {
		log.Fatal(err)
	}

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-18s %-7s %6d states, %5d report states (paper, full scale)\n",
				s.Name, s.Family, s.PaperStates, s.PaperReportStates)
		}
		return
	}

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}

	w, err := workload.Get(*name, *scale, *inputLen)
	if err != nil {
		log.Fatal(err)
	}
	st := w.Automaton.ComputeStats()
	fmt.Printf("%s (%s): %d states, %d edges, %d report states, %d-byte input\n",
		w.Spec.Name, w.Spec.Family, st.States, st.Edges, st.ReportStates, len(w.Input))

	// Functional simulation + reporting baselines.
	p := report.DefaultParams()
	ap := report.NewAP(w.Automaton, p)
	rad := report.NewRAD(w.Automaton, p)
	sim := funcsim.NewByteSimulator(w.Automaton)
	res := sim.Run(w.Input, funcsim.Options{
		TrackActive: true,
		OnReportCycle: func(cycle int64, states []automata.StateID) {
			ap.OnReportCycle(cycle, states)
			rad.OnReportCycle(cycle, states)
		},
	})
	fmt.Printf("\nfunctional simulation (8-bit, VASim-equivalent):\n")
	fmt.Printf("  %d cycles, %d reports in %d report cycles (%.2f%% of cycles, burst %.2f)\n",
		res.Cycles, res.Reports, res.ReportCycles,
		100*res.ReportCycleFraction(), res.ReportsPerReportCycle())
	fmt.Printf("  peak simultaneously-active states: %d\n", res.MaxActive)

	// Sunder machine.
	ua, err := transform.ToRate(w.Automaton, *rate)
	if err != nil {
		log.Fatal(err)
	}
	if anFlags.Prune {
		pres := analysis.Prune(ua)
		fmt.Printf("\npruned %d dead state(s) (%d unreachable, %d useless, %d never-match, %d subsumed), %d report rows freed\n",
			pres.Removed(), pres.Unreachable, pres.Useless, pres.NeverMatch, pres.Subsumed, pres.ReportRowsFreed)
	}
	if anFlags.Minimize {
		pre := ua.Clone()
		mres := analysis.Minimize(ua)
		if err := analysis.CheckCertificate(pre, ua, mres.Cert); err != nil {
			log.Fatalf("minimization certificate rejected: %v", err)
		}
		sc := analysis.SymbolClasses(w.Automaton)
		if err := analysis.CheckSymbolClasses(w.Automaton, sc); err != nil {
			log.Fatalf("symbol-class certificate rejected: %v", err)
		}
		fmt.Printf("\nminimized %d state(s) (%d pruned, %d bisim, %d prefix) in %d round(s); certificate verified; %d symbol class(es)\n",
			mres.Removed(), mres.Pruned, mres.BisimMerged, mres.PrefixMerged, mres.Rounds, sc.Count())
	}
	cfg := core.DefaultConfig(*rate)
	cfg.FIFO = *fifo
	cfg.SummarizeOnFull = *summarize
	budget, err := mapping.AutoReportColumns(ua, cfg.ReportColumns)
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	cfg.ReportColumns = budget
	place, err := mapping.Place(ua, cfg.ReportColumns)
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	m, err := core.Configure(ua, place, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if anFlags.Lint {
		rep := analysis.Analyze(ua, analysis.Options{
			Source:        w.Automaton,
			Placement:     place,
			ReportColumns: cfg.ReportColumns,
			EquivSample:   w.Input,
		})
		fmt.Printf("\nstatic analysis:\n")
		rep.WriteText(os.Stdout)
		if err := rep.Err(); err != nil {
			log.Fatalf("analysis failed: %v", err)
		}
	}
	col := telFlags.Collector()
	m.AttachTelemetry(col)
	mres := m.Run(funcsim.BytesToUnits(w.Input, 4), core.RunOptions{})
	fmt.Printf("\nSunder @ %d-bit/cycle (FIFO=%v, summarize=%v): %d states on %d PUs (m=%d)\n",
		4**rate, *fifo, *summarize, ua.NumStates(), m.NumPUs(), cfg.ReportColumns)
	stats := sunder.Stats{
		KernelCycles: mres.KernelCycles,
		StallCycles:  mres.StallCycles,
		Flushes:      mres.Flushes,
		Reports:      mres.Reports,
		ReportCycles: mres.ReportCycles,
	}
	if err := stats.WriteText(os.Stdout, 4**rate); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d summaries; measured energy %.2f pJ/byte (%d report writes)\n",
		mres.Summaries, m.EnergyPerByte(), m.Energy().ReportWrites)

	apo := ap.Result()
	rado := rad.Result()
	fmt.Printf("\nreporting-architecture comparison (same workload):\n")
	fmt.Printf("  %-12s overhead %8.2fx  (%d flushes, reports stored in place)\n",
		"Sunder", mres.Overhead(), mres.Flushes)
	fmt.Printf("  %-12s overhead %8.2fx  (%d flushes, %.1f KB offloaded)\n",
		"AP", apo.Overhead(res.Cycles), apo.Flushes, float64(apo.OffloadedBits)/8192)
	fmt.Printf("  %-12s overhead %8.2fx  (%d flushes, %.1f KB offloaded)\n",
		"AP+RAD", rado.Overhead(res.Cycles), rado.Flushes, float64(rado.OffloadedBits)/8192)

	if beFlags.Enabled() {
		o := sunder.DefaultOptions()
		o.Rate = *rate
		o.FIFO = *fifo
		o.SummarizeOnFull = *summarize
		o.Prune = anFlags.Prune
		o.Minimize = anFlags.Minimize
		o.Backend = beFlags.Backend
		eng, err := sunder.CompileAutomaton(w.Automaton, o)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		sres, err := eng.Scan(w.Input)
		if err != nil {
			log.Fatal(err)
		}
		ns := time.Since(t0).Nanoseconds()
		if ns < 1 {
			ns = 1
		}
		info := eng.Info()
		fmt.Printf("\nsoftware engine (-backend %s): resolved %q\n", beFlags.Backend, info.Backend)
		fmt.Printf("  %d matches, %d reports in %d report cycles; %.2f ms (%.1f MB/s simulated)\n",
			len(sres.Matches), sres.Stats.Reports, sres.Stats.ReportCycles,
			float64(ns)/1e6, float64(len(w.Input))/1e6/(float64(ns)/1e9))
		if st := eng.DFAStats(); st.Hits+st.Misses > 0 {
			fmt.Printf("  lazy DFA: %d resident states, %.1f%% transition-cache hit rate, %d evictions, %d fallbacks\n",
				st.States, 100*float64(st.Hits)/float64(st.Hits+st.Misses), st.Evictions, st.Fallbacks)
		}
		// Report cycles are cycle-granularity and shrink with the rate
		// (two byte positions share a 16-bit cycle), so only the report
		// count is comparable to the 8-bit functional simulation.
		verdict := "report count identical to functional simulation"
		if sres.Stats.Reports != res.Reports {
			verdict = "report count DIVERGED from functional simulation"
		}
		fmt.Printf("  %s\n", verdict)
	}

	if parFlags.Enabled() {
		workers := parFlags.EffectiveWorkers()
		units := funcsim.PadUnits(funcsim.BytesToUnits(w.Input, 4), *rate)
		proto := m.Clone()

		seqM := proto.Clone()
		t0 := time.Now()
		seqRes := seqM.Run(units, core.RunOptions{})
		seqNS := time.Since(t0).Nanoseconds()

		t0 = time.Now()
		rr := sched.ParallelRun(proto, ua, units, sched.RunConfig{Workers: workers})
		parNS := time.Since(t0).Nanoseconds()
		if parNS < 1 {
			parNS = 1
		}

		depth, bounded := sched.DependenceCycles(ua)
		fmt.Printf("\nparallel sharded scan (-workers %d):\n", workers)
		if bounded {
			fmt.Printf("  dependence window %d cycles; sharded=%v across %d workers (overlap %d cycles, %d warm-up cycles total)\n",
				depth, rr.Sharded, rr.Workers, rr.OverlapCycles, rr.WarmupCycles)
		} else {
			fmt.Printf("  dependence window unbounded (cyclic automaton): sequential fallback\n")
		}
		verdict := "identical to sequential"
		if rr.Reports != seqRes.Reports || rr.ReportCycles != seqRes.ReportCycles ||
			rr.MaxReportsPerCycle != seqRes.MaxReportsPerCycle || rr.KernelCycles != seqRes.KernelCycles {
			verdict = "DIVERGED from sequential"
		}
		fmt.Printf("  sequential %.2f ms, parallel %.2f ms: %.2fx speedup (%.1f MB/s simulated); report stream %s\n",
			float64(seqNS)/1e6, float64(parNS)/1e6, float64(seqNS)/float64(parNS),
			float64(len(w.Input))/1e6/(float64(parNS)/1e9), verdict)
	}

	if faultFlags.Enabled() {
		pol, err := faultFlags.Policy()
		if err != nil {
			log.Fatal(err)
		}
		row, err := exp.FaultRun(w, *rate, cfg, pol, col)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "identical to fault-free reference"
		if !row.OutputOK {
			verdict = "DIVERGED from fault-free reference"
		}
		fmt.Printf("\nfault injection and recovery (-faults %s):\n", faultFlags.Spec)
		fmt.Printf("  injected %d, detected %d (coverage %.0f%%), recoveries %d, quarantined PUs %d\n",
			row.Injected, row.Detected, 100*row.Coverage, row.Recoveries, row.Quarantined)
		fmt.Printf("  recovery slowdown %.3fx; recovered report stream %s\n", row.Slowdown, verdict)
	}

	if err := telFlags.Emit(os.Stdout, col); err != nil {
		log.Fatal(err)
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}
