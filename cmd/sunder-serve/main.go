// sunder-serve runs the network scan service: the Sunder engine behind a
// stdlib net/http API, serving compiled rule sets for batched and
// streaming pattern matching (see internal/server and DESIGN.md §4.11).
//
// Usage:
//
//	sunder-serve                          # serve on 127.0.0.1:8080
//	sunder-serve -addr :9090 -pool 8      # bigger engine pools
//	sunder-serve -loadgen                 # drive all 19 benchmark inputs through an in-process server
//	sunder-serve -loadgen -json > BENCH_serve.json
//	sunder-serve -loadgen -bench Snort -clients 8 -requests 16
//	sunder-serve -cluster 3 -replicas 2   # serve a replicated in-process cluster front door
//	sunder-serve -loadgen -cluster 3 -chaos -json > BENCH_cluster.json
//
// Serving endpoints:
//
//	PUT    /rulesets/{id}        upload + compile a rule set (JSON: patterns, options)
//	GET    /rulesets/{id}        compiled info + serving stats
//	DELETE /rulesets/{id}        remove a rule set
//	POST   /rulesets/{id}/scan   scan a raw body, or a JSON batch of inputs
//	POST   /rulesets/{id}/stream chunked body in, NDJSON matches out
//	GET    /metrics              service + compile-cache + device counters,
//	                             per-ruleset latency quantiles and shed
//	                             counters (?format=json for the structured view)
//	GET    /trace                merged Chrome trace of device cycle events and
//	                             request spans (?format=spans for raw JSONL;
//	                             requires -trace-sample > 0)
//	GET    /debug/pprof/         runtime profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sunder/internal/cliutil"
	"sunder/internal/cluster"
	"sunder/internal/exp"
	"sunder/internal/loadgen"
	"sunder/internal/server"
	"sunder/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sunder-serve: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		pool     = flag.Int("pool", 0, "engine clones per ruleset (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "waiters allowed beyond the pool before shedding 503 (0 = 4x pool, negative = none)")
		workers  = flag.Int("scanworkers", 0, "worker goroutines per batched/parallel scan (0 = GOMAXPROCS)")
		maxBody  = flag.Int64("maxbody", 0, "request body cap in bytes (0 = 16MiB)")
		timeout  = flag.Duration("timeout", 0, "per-scan-request timeout (0 = 30s)")
		drain    = flag.Duration("drain", 0, "graceful shutdown budget (0 = 10s)")
		traceN   = flag.Int("trace-sample", 0, "record a span tree for every Nth request and arm the device tracer for GET /trace (0 = tracing off)")
		traceCap = flag.Int("trace-cap", 0, "max buffered spans (0 = 64k)")
		loadgen  = flag.Bool("loadgen", false, "run the load generator against an in-process server instead of serving")
		benches  = flag.String("bench", "", "loadgen: comma-separated benchmark names (default: all 19)")
		clients  = flag.Int("clients", 4, "loadgen: concurrent HTTP clients")
		requests = flag.Int("requests", 4, "loadgen: scan requests per client per benchmark")
		scale    = flag.Float64("scale", 0, "loadgen: override benchmark scale (0,1]")
		inputLen = flag.Int("input", 0, "loadgen: override input length in bytes")
		jsonOut  = flag.Bool("json", false, "loadgen: emit rows as JSON (BENCH_serve.json shape)")
		nodes    = flag.Int("cluster", 0, "run N in-process nodes behind a replicated front door (0 = single server)")
		replicas = flag.Int("replicas", 2, "cluster: replicas per ruleset")
		chaosOn  = flag.Bool("chaos", false, "cluster loadgen: inject the default deterministic fault mix")
		seed     = flag.Int64("seed", 1, "cluster: seed for client jitter, arrivals and chaos")
		profiles = cliutil.ProfileFlags()
	)
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}

	cfg := server.Config{
		PoolSize:         *pool,
		QueueDepth:       *queue,
		ScanWorkers:      *workers,
		MaxBodyBytes:     *maxBody,
		ScanTimeout:      *timeout,
		DrainTimeout:     *drain,
		TraceSampleEvery: *traceN,
		TraceCapacity:    *traceCap,
	}

	if *loadgen {
		var err error
		if *nodes > 0 {
			err = runClusterLoadgen(*benches, *requests, *scale, *inputLen, *jsonOut,
				*nodes, *replicas, *chaosOn, *seed)
		} else {
			err = runLoadgen(cfg, *benches, *clients, *requests, *scale, *inputLen, *jsonOut)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *nodes > 0 {
		if err := serveCluster(ctx, cfg, *addr, *nodes, *replicas, *seed, *drain); err != nil {
			log.Fatal(err)
		}
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}

// serveCluster runs N in-process nodes behind the replicated front door on
// one listener: requests route through the resilient client (retries,
// hedging, circuit breaking), so a drained or failed node is invisible to
// callers as long as a replica survives.
func serveCluster(ctx context.Context, cfg server.Config, addr string, nodes, replicas int, seed int64, drain time.Duration) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cl := cluster.New(cluster.Config{
		Nodes:    nodes,
		Replicas: replicas,
		Node:     cfg,
		Client:   cluster.ClientConfig{Seed: seed},
		Logger:   logger,
	})
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	cl.StartProbes(probeCtx, time.Second)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: cl.Handler()}
	logger.Info("cluster front door listening", "addr", ln.Addr().String(),
		"nodes", nodes, "replicas", replicas)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if drain <= 0 {
		drain = 10 * time.Second
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return hs.Shutdown(shutCtx)
}

func runLoadgen(cfg server.Config, benches string, clients, requests int, scale float64, inputLen int, jsonOut bool) error {
	opts := exp.DefaultOptions()
	if scale > 0 {
		opts.Scale = scale
	}
	if inputLen > 0 {
		opts.InputLen = inputLen
	}
	names := workload.Names()
	if benches != "" {
		names = nil
		for _, n := range strings.Split(benches, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	rows, err := loadgen.ServeStudy(opts, names, loadgen.Config{
		Clients:    clients,
		Requests:   requests,
		PoolSize:   cfg.PoolSize,
		QueueDepth: cfg.QueueDepth,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		res := &exp.Results{Options: opts, Serve: rows}
		return res.WriteJSON(os.Stdout)
	}
	exp.FprintServeStudy(os.Stdout, rows)
	for _, r := range rows {
		if !r.OutputOK || !r.StreamOK {
			return fmt.Errorf("%s: service output diverged from local Scan", r.Name)
		}
	}
	return nil
}

// runClusterLoadgen drives the benchmarks through an in-process replicated
// cluster under open-loop arrivals, optionally with the default chaos mix,
// and emits exp.Results{Cluster: rows} for -json (BENCH_cluster.json).
func runClusterLoadgen(benches string, requests int, scale float64, inputLen int, jsonOut bool, nodes, replicas int, chaosOn bool, seed int64) error {
	opts := exp.DefaultOptions()
	if scale > 0 {
		opts.Scale = scale
	}
	if inputLen > 0 {
		opts.InputLen = inputLen
	}
	names := workload.Names()
	if benches != "" {
		names = nil
		for _, n := range strings.Split(benches, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	ccfg := loadgen.ClusterConfig{
		Nodes:    nodes,
		Replicas: replicas,
		Requests: requests,
		Seed:     seed,
	}
	if chaosOn {
		ccfg.Chaos = loadgen.DefaultChaos(seed)
	}
	rows, err := loadgen.ClusterStudy(opts, names, ccfg)
	if err != nil {
		return err
	}
	if jsonOut {
		res := &exp.Results{Options: opts, Cluster: rows}
		return res.WriteJSON(os.Stdout)
	}
	exp.FprintClusterStudy(os.Stdout, rows)
	for _, r := range rows {
		if !r.OutputOK {
			return fmt.Errorf("%s: cluster output diverged from local reference", r.Name)
		}
		if r.Availability < 0.999 {
			return fmt.Errorf("%s: availability %.4f below 99.9%%", r.Name, r.Availability)
		}
	}
	return nil
}
