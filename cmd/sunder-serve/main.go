// sunder-serve runs the network scan service: the Sunder engine behind a
// stdlib net/http API, serving compiled rule sets for batched and
// streaming pattern matching (see internal/server and DESIGN.md §4.11).
//
// Usage:
//
//	sunder-serve                          # serve on 127.0.0.1:8080
//	sunder-serve -addr :9090 -pool 8      # bigger engine pools
//	sunder-serve -loadgen                 # drive all 19 benchmark inputs through an in-process server
//	sunder-serve -loadgen -json > BENCH_serve.json
//	sunder-serve -loadgen -bench Snort -clients 8 -requests 16
//
// Serving endpoints:
//
//	PUT    /rulesets/{id}        upload + compile a rule set (JSON: patterns, options)
//	GET    /rulesets/{id}        compiled info + serving stats
//	DELETE /rulesets/{id}        remove a rule set
//	POST   /rulesets/{id}/scan   scan a raw body, or a JSON batch of inputs
//	POST   /rulesets/{id}/stream chunked body in, NDJSON matches out
//	GET    /metrics              service + compile-cache + device counters,
//	                             per-ruleset latency quantiles and shed
//	                             counters (?format=json for the structured view)
//	GET    /trace                merged Chrome trace of device cycle events and
//	                             request spans (?format=spans for raw JSONL;
//	                             requires -trace-sample > 0)
//	GET    /debug/pprof/         runtime profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sunder/internal/cliutil"
	"sunder/internal/exp"
	"sunder/internal/loadgen"
	"sunder/internal/server"
	"sunder/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sunder-serve: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		pool     = flag.Int("pool", 0, "engine clones per ruleset (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "waiters allowed beyond the pool before shedding 503 (0 = 4x pool, negative = none)")
		workers  = flag.Int("scanworkers", 0, "worker goroutines per batched/parallel scan (0 = GOMAXPROCS)")
		maxBody  = flag.Int64("maxbody", 0, "request body cap in bytes (0 = 16MiB)")
		timeout  = flag.Duration("timeout", 0, "per-scan-request timeout (0 = 30s)")
		drain    = flag.Duration("drain", 0, "graceful shutdown budget (0 = 10s)")
		traceN   = flag.Int("trace-sample", 0, "record a span tree for every Nth request and arm the device tracer for GET /trace (0 = tracing off)")
		traceCap = flag.Int("trace-cap", 0, "max buffered spans (0 = 64k)")
		loadgen  = flag.Bool("loadgen", false, "run the load generator against an in-process server instead of serving")
		benches  = flag.String("bench", "", "loadgen: comma-separated benchmark names (default: all 19)")
		clients  = flag.Int("clients", 4, "loadgen: concurrent HTTP clients")
		requests = flag.Int("requests", 4, "loadgen: scan requests per client per benchmark")
		scale    = flag.Float64("scale", 0, "loadgen: override benchmark scale (0,1]")
		inputLen = flag.Int("input", 0, "loadgen: override input length in bytes")
		jsonOut  = flag.Bool("json", false, "loadgen: emit rows as JSON (BENCH_serve.json shape)")
		profiles = cliutil.ProfileFlags()
	)
	flag.Parse()

	stopProfiles, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}

	cfg := server.Config{
		PoolSize:         *pool,
		QueueDepth:       *queue,
		ScanWorkers:      *workers,
		MaxBodyBytes:     *maxBody,
		ScanTimeout:      *timeout,
		DrainTimeout:     *drain,
		TraceSampleEvery: *traceN,
		TraceCapacity:    *traceCap,
	}

	if *loadgen {
		if err := runLoadgen(cfg, *benches, *clients, *requests, *scale, *inputLen, *jsonOut); err != nil {
			log.Fatal(err)
		}
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}

func runLoadgen(cfg server.Config, benches string, clients, requests int, scale float64, inputLen int, jsonOut bool) error {
	opts := exp.DefaultOptions()
	if scale > 0 {
		opts.Scale = scale
	}
	if inputLen > 0 {
		opts.InputLen = inputLen
	}
	names := workload.Names()
	if benches != "" {
		names = nil
		for _, n := range strings.Split(benches, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	rows, err := loadgen.ServeStudy(opts, names, loadgen.Config{
		Clients:    clients,
		Requests:   requests,
		PoolSize:   cfg.PoolSize,
		QueueDepth: cfg.QueueDepth,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		res := &exp.Results{Options: opts, Serve: rows}
		return res.WriteJSON(os.Stdout)
	}
	exp.FprintServeStudy(os.Stdout, rows)
	for _, r := range rows {
		if !r.OutputOK || !r.StreamOK {
			return fmt.Errorf("%s: service output diverged from local Scan", r.Name)
		}
	}
	return nil
}
