// Command sunder-vet lints the repository for Sunder-specific invariants
// that go vet cannot know: determinism of the simulation packages (no
// wall clock, no global randomness), no by-value copies of lock-bearing
// structs, fault-hook nil-check discipline, and atomic-only access to
// fields handed to sync/atomic.
//
// Usage:
//
//	sunder-vet [packages]
//
// Package arguments are ./...-style path patterns relative to the module
// root; with no arguments the whole module is linted. Exits 1 when any
// finding is reported. Built only on go/parser and go/ast, so it needs no
// build cache and no network.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sunder/internal/vet"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunder-vet:", err)
		os.Exit(2)
	}
	pkgs, fset, err := vet.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunder-vet:", err)
		os.Exit(2)
	}
	// The nocopy index needs every package, so linting always runs over the
	// full module; arguments only filter which findings are shown.
	findings := vet.Lint(fset, pkgs, vet.DefaultConfig())

	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	shown := 0
	for _, f := range findings {
		if !matchesAny(root, f.Pos.Filename, args) {
			continue
		}
		fmt.Println(f)
		shown++
	}
	if shown > 0 {
		fmt.Fprintf(os.Stderr, "sunder-vet: %d finding(s)\n", shown)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// matchesAny reports whether file (absolute) falls under one of the
// ./...-style patterns, resolved against the module root.
func matchesAny(root, file string, patterns []string) bool {
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		if rec, ok := strings.CutSuffix(pat, "/..."); ok {
			if rec == "." || rec == "" || rel == rec || strings.HasPrefix(rel, rec+"/") {
				return true
			}
			continue
		}
		if pat == "." || filepath.ToSlash(filepath.Dir(rel)) == pat || rel == pat {
			return true
		}
	}
	return false
}
