package sunder

import (
	"bytes"
	"strings"
	"testing"

	"sunder/internal/workload"
)

// TestSpanDifferential is the acceptance criterion for span tracing: a
// traced engine — at any sample rate, with or without the cycle-level
// event trace — must produce byte-identical results to an untraced one
// on every scan path. Spans observe the serve and scheduling layers;
// they must never reach into scan semantics.
func TestSpanDifferential(t *testing.T) {
	names := []string{"Snort", "Levenshtein", "RandomForest"}
	if testing.Short() {
		names = names[:1]
	}
	const inputLen = 6000
	for _, name := range names {
		w, err := workload.Get(name, workload.DefaultScale, inputLen)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := fromByteNFA(w.Automaton, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		batch := [][]byte{w.Input[:inputLen/2], w.Input[inputLen/2:], w.Input}

		baseSeq, err := eng.Scan(w.Input)
		if err != nil {
			t.Fatal(err)
		}
		basePar, err := eng.ScanParallel(w.Input, ScanOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		baseBatch, err := eng.ScanBatch(batch, ScanOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}

		for _, mode := range []struct {
			label string
			opts  TelemetryOptions
		}{
			{"spans-all", TelemetryOptions{Spans: true, SpanSampleEvery: 1}},
			{"spans-sampled", TelemetryOptions{Spans: true, SpanSampleEvery: 4}},
			{"spans+trace", TelemetryOptions{Spans: true, SpanSampleEvery: 1, Trace: true}},
		} {
			tel := NewTelemetry(mode.opts)
			eng.SetTelemetry(tel)

			seq, err := eng.Scan(w.Input)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(sortedMatches(baseSeq.Matches), sortedMatches(seq.Matches)) ||
				seq.Stats != baseSeq.Stats {
				t.Errorf("%s/%s: sequential scan diverged under tracing", name, mode.label)
			}
			par, err := eng.ScanParallel(w.Input, ScanOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(sortedMatches(basePar.Matches), sortedMatches(par.Matches)) ||
				par.Stats != basePar.Stats {
				t.Errorf("%s/%s: parallel scan diverged under tracing", name, mode.label)
			}
			got, err := eng.ScanBatch(batch, ScanOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !matchesEqual(sortedMatches(baseBatch[i].Matches), sortedMatches(got[i].Matches)) ||
					got[i].Stats != baseBatch[i].Stats {
					t.Errorf("%s/%s: batch input %d diverged under tracing", name, mode.label, i)
				}
			}

			// Record-all modes must actually have recorded the scheduler
			// spans; sampling keeps a subset (possibly empty at rate 4
			// over few roots, so only the rate-1 modes are asserted).
			buffered, dropped := tel.SpanStats()
			if mode.opts.SpanSampleEvery == 1 && buffered == 0 {
				t.Errorf("%s/%s: no spans recorded", name, mode.label)
			}
			if dropped != 0 {
				t.Errorf("%s/%s: %d spans dropped with default capacity", name, mode.label, dropped)
			}
			eng.SetTelemetry(nil)
		}
	}
}

// TestSpanExportsFromScan pins the export surface over a real scan: the
// scheduler spans come out as JSONL and as pid-1 events in the merged
// Chrome document, alongside the device cycle trace on pid 0.
func TestSpanExportsFromScan(t *testing.T) {
	w, err := workload.Get("Snort", workload.DefaultScale, 4000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fromByteNFA(w.Automaton, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(TelemetryOptions{Spans: true, SpanSampleEvery: 1, Trace: true})
	eng.SetTelemetry(tel)
	defer eng.SetTelemetry(nil)
	if _, err := eng.ScanParallel(w.Input, ScanOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}

	var jsonl bytes.Buffer
	if err := tel.WriteSpansJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"parallel_run"`, `"name":"shard"`, `"name":"scan"`} {
		if !strings.Contains(jsonl.String(), want) {
			t.Errorf("span JSONL missing %s:\n%s", want, jsonl.String())
		}
	}

	var merged bytes.Buffer
	if err := tel.WriteMergedChromeTrace(&merged); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"pid":0`, `"pid":1`, `"name":"parallel_run"`} {
		if !strings.Contains(merged.String(), want) {
			t.Errorf("merged Chrome trace missing %s", want)
		}
	}
}
