package sunder

// The benchmark harness: one testing.B per table and figure of the paper's
// evaluation (regenerating its rows each iteration), the ablation studies
// from DESIGN.md, and microbenchmarks of the pipeline stages. Run with
//
//	go test -bench=. -benchmem
//
// Reduced-scale options keep iterations tractable; `cmd/sunder-bench -full`
// regenerates everything at paper scale.

import (
	"fmt"
	"io"
	"testing"

	"sunder/internal/core"
	"sunder/internal/exp"
	"sunder/internal/faults"
	"sunder/internal/funcsim"
	"sunder/internal/mapping"
	"sunder/internal/sched"
	"sunder/internal/telemetry"
	"sunder/internal/transform"
	"sunder/internal/workload"
)

var benchOpts = exp.Options{Scale: 0.01, InputLen: 10000}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintTable1(io.Discard, rows, benchOpts)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.FprintTable2(io.Discard)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintTable3(io.Discard, rows, benchOpts)
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintTable4(io.Discard, rows, benchOpts)
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.FprintTable5(io.Discard, exp.Table5())
	}
}

func BenchmarkFigure8(b *testing.B) {
	rows, err := exp.Table4(benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.FprintFigure8(io.Discard, exp.Figure8(rows))
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.FprintFigure9(io.Discard, exp.Figure9())
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.Figure10(80000)
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintFigure10(io.Discard, pts, 80000)
	}
}

// Ablation benches (DESIGN.md §4.6).

func BenchmarkAblationFIFO(b *testing.B) {
	w := workload.MustGet("SPM", benchOpts.Scale, benchOpts.InputLen)
	units := funcsim.BytesToUnits(w.Input, 4)
	for _, fifo := range []bool{false, true} {
		name := "flush"
		if fifo {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.FIFO = fifo
			m := mustMachine(b, w, cfg)
			b.SetBytes(int64(len(w.Input)))
			b.ResetTimer()
			var overhead float64
			for i := 0; i < b.N; i++ {
				m.Reset()
				res := m.Run(units, core.RunOptions{})
				overhead = res.Overhead()
			}
			b.ReportMetric(overhead, "overhead-x")
		})
	}
}

func BenchmarkAblationSummarize(b *testing.B) {
	w := workload.MustGet("SPM", benchOpts.Scale, benchOpts.InputLen)
	units := funcsim.BytesToUnits(w.Input, 4)
	for _, sum := range []bool{false, true} {
		name := "flush"
		if sum {
			name = "summarize"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.SummarizeOnFull = sum
			m := mustMachine(b, w, cfg)
			b.SetBytes(int64(len(w.Input)))
			b.ResetTimer()
			var overhead float64
			for i := 0; i < b.N; i++ {
				m.Reset()
				res := m.Run(units, core.RunOptions{})
				overhead = res.Overhead()
			}
			b.ReportMetric(overhead, "overhead-x")
		})
	}
}

func BenchmarkAblationRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationRate(benchOpts, []string{"Snort", "SPM"})
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintAblationRate(io.Discard, rows)
	}
}

func BenchmarkAblationReportWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationReportWidth(benchOpts, []int{8, 12, 16})
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintAblationReportWidth(io.Discard, rows)
	}
}

func BenchmarkAblationCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationCover(benchOpts, []string{"Protomata", "Snort"})
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintAblationCover(io.Discard, rows)
	}
}

// Extension-study benches.

func BenchmarkExtensionPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.PowerStudy(benchOpts, []string{"Snort", "SPM", "ClamAV"})
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintPowerStudy(io.Discard, rows)
	}
}

func BenchmarkExtensionHotCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.HotColdStudy(benchOpts, []string{"Snort"}, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintHotColdStudy(io.Discard, rows)
	}
}

func BenchmarkExtensionWide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := exp.WideStudy(20, 3, 4000)
		if err != nil {
			b.Fatal(err)
		}
		exp.FprintWideStudy(io.Discard, row)
	}
}

// Pipeline microbenchmarks.

func BenchmarkCompile(b *testing.B) {
	patterns := []Pattern{
		{Expr: `GET /[a-z]+ HTTP`, Code: 1},
		{Expr: `a(b|c)+d{2,4}`, Code: 2},
		{Expr: `\x00\xff.*end`, Code: 3},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Compile(patterns, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformRate4(b *testing.B) {
	w := workload.MustGet("Snort", benchOpts.Scale, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform.ToRate(w.Automaton, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuncsimSnort(b *testing.B) {
	w := workload.MustGet("Snort", benchOpts.Scale, benchOpts.InputLen)
	sim := funcsim.NewByteSimulator(w.Automaton)
	b.SetBytes(int64(len(w.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Reset()
		sim.Run(w.Input, funcsim.Options{})
	}
}

func BenchmarkMachineSnort(b *testing.B) {
	w := workload.MustGet("Snort", benchOpts.Scale, benchOpts.InputLen)
	m := mustMachine(b, w, core.DefaultConfig(4))
	units := funcsim.BytesToUnits(w.Input, 4)
	b.SetBytes(int64(len(w.Input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.Run(units, core.RunOptions{})
	}
}

func BenchmarkEngineScan(b *testing.B) {
	eng, err := Compile([]Pattern{
		{Expr: `needle`, Code: 1},
		{Expr: `ha+ystack`, Code: 2},
	}, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 64*1024)
	for i := range input {
		input[i] = byte('a' + i%17)
	}
	copy(input[1000:], "needle")
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Scan(input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead measures the cost of the telemetry hooks on
// the machine hot path in its three modes: detached (the default; the
// guard branch only), counters attached, and counters plus event tracing.
// "off" must stay within noise of BenchmarkMachineSnort.
func BenchmarkTelemetryOverhead(b *testing.B) {
	w := workload.MustGet("Snort", benchOpts.Scale, benchOpts.InputLen)
	units := funcsim.BytesToUnits(w.Input, 4)
	for _, mode := range []string{"off", "counters", "trace"} {
		b.Run(mode, func(b *testing.B) {
			m := mustMachine(b, w, core.DefaultConfig(4))
			var col *telemetry.Collector
			switch mode {
			case "counters":
				col = telemetry.NewCollector()
			case "trace":
				col = telemetry.NewCollector()
				col.EnableTrace(0)
			}
			m.AttachTelemetry(col)
			b.SetBytes(int64(len(w.Input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				if col != nil {
					col.Reset()
				}
				m.Run(units, core.RunOptions{})
			}
		})
	}
}

// BenchmarkSpanOverhead measures the wall-clock span tracer's cost on the
// parallel scan path in its three modes: spans off (nil tracer — the
// instrumentation sites must reduce to free nil checks), 1-in-16 sampling
// (the production setting), and every-request tracing. "off" is the
// spans-disabled hot path the acceptance criteria pin against the
// untraced baseline.
func BenchmarkSpanOverhead(b *testing.B) {
	eng, err := Compile([]Pattern{
		{Expr: `needle`, Code: 1},
		{Expr: `ha+ystack`, Code: 2},
	}, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 64*1024)
	for i := range input {
		input[i] = byte('a' + i%17)
	}
	copy(input[1000:], "needle")
	for _, mode := range []struct {
		name   string
		sample int
	}{
		{"off", 0},
		{"sampled-16", 16},
		{"all", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.sample > 0 {
				tel := NewTelemetry(TelemetryOptions{Spans: true, SpanSampleEvery: mode.sample})
				eng.SetTelemetry(tel)
				defer eng.SetTelemetry(nil)
			}
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ScanParallel(input, ScanOptions{Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaultOverhead measures the cost of the fault machinery on the
// machine hot path: "off" (no hook attached; one nil-check per site — must
// stay within noise of BenchmarkMachineSnort), "hook-idle" (a zero-rate
// injector attached, paying the hook call per cycle), and "guarded" (the
// full detection-only recovery guard: checkpoints, scrubbing, parity,
// audits, and the lockstep shadow simulator).
func BenchmarkFaultOverhead(b *testing.B) {
	w := workload.MustGet("Snort", benchOpts.Scale, benchOpts.InputLen)
	units := funcsim.BytesToUnits(w.Input, 4)
	b.Run("off", func(b *testing.B) {
		m := mustMachine(b, w, core.DefaultConfig(4))
		b.SetBytes(int64(len(w.Input)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			m.Run(units, core.RunOptions{})
		}
	})
	b.Run("hook-idle", func(b *testing.B) {
		m := mustMachine(b, w, core.DefaultConfig(4))
		inj, err := faults.NewInjector(faults.DefaultPolicy())
		if err != nil {
			b.Fatal(err)
		}
		m.AttachFaults(inj)
		b.SetBytes(int64(len(w.Input)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			m.Run(units, core.RunOptions{})
		}
	})
	b.Run("guarded", func(b *testing.B) {
		cfg := core.DefaultConfig(4)
		ua, err := transform.ToRate(w.Automaton, cfg.Rate)
		if err != nil {
			b.Fatal(err)
		}
		budget, err := mapping.AutoReportColumns(ua, cfg.ReportColumns)
		if err != nil {
			b.Fatal(err)
		}
		cfg.ReportColumns = budget
		place, err := mapping.Place(ua, cfg.ReportColumns)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(w.Input)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := core.Configure(ua, place, cfg)
			if err != nil {
				b.Fatal(err)
			}
			g, err := faults.NewGuard(m, ua, place, faults.DefaultPolicy(), nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Run(units); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Parallel-scan and compile-cache benches (DESIGN.md §4.9).

// BenchmarkScanParallel measures the sharded parallel runner on a mesh
// workload (bounded dependence window, so it shards) against the
// sequential machine, across worker counts. On a multi-core host the
// 8-worker case is the scaling headline; scripts/bench.sh records it.
func BenchmarkScanParallel(b *testing.B) {
	w := workload.MustGet("Levenshtein", 0.05, 1<<17)
	cfg := core.DefaultConfig(4)
	ua, err := transform.ToRate(w.Automaton, cfg.Rate)
	if err != nil {
		b.Fatal(err)
	}
	proto := mustMachine(b, w, cfg)
	units := funcsim.PadUnits(funcsim.BytesToUnits(w.Input, 4), cfg.Rate)
	b.Run("sequential", func(b *testing.B) {
		m := proto.Clone()
		b.SetBytes(int64(len(w.Input)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			m.Run(units, core.RunOptions{})
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(w.Input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched.ParallelRun(proto, ua, units, sched.RunConfig{Workers: workers})
			}
		})
	}
}

// BenchmarkEngineScanParallel is the facade-level counterpart of
// BenchmarkEngineScan: the same input through ScanParallel.
func BenchmarkEngineScanParallel(b *testing.B) {
	eng, err := Compile([]Pattern{
		{Expr: `needle`, Code: 1},
		{Expr: `ha+ystack`, Code: 2},
	}, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 64*1024)
	for i := range input {
		input[i] = byte('a' + i%17)
	}
	copy(input[1000:], "needle")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ScanParallel(input, ScanOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileCache quantifies what the compiled-machine cache saves:
// a miss pays the full compile/transform/place pipeline, a hit only a
// machine clone.
func BenchmarkCompileCache(b *testing.B) {
	patterns := []Pattern{
		{Expr: `GET /[a-z]+ HTTP`, Code: 1},
		{Expr: `a(b|c)+d{2,4}`, Code: 2},
	}
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ResetCompileCache()
			if _, err := CompileCached(patterns, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		ResetCompileCache()
		if _, err := CompileCached(patterns, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := CompileCached(patterns, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// mustMachine builds a machine for a workload, picking a feasible report
// budget automatically.
func mustMachine(b *testing.B, w *workload.Workload, cfg core.Config) *core.Machine {
	b.Helper()
	ua, err := transform.ToRate(w.Automaton, cfg.Rate)
	if err != nil {
		b.Fatal(err)
	}
	budget, err := mapping.AutoReportColumns(ua, cfg.ReportColumns)
	if err != nil {
		b.Fatal(err)
	}
	cfg.ReportColumns = budget
	place, err := mapping.Place(ua, cfg.ReportColumns)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Configure(ua, place, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}
