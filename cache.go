package sunder

import (
	"crypto/sha256"
	"encoding/binary"
	"sync/atomic"
	"time"

	"sunder/internal/analysis"
	"sunder/internal/automata"
	"sunder/internal/core"
	"sunder/internal/dfa"
	"sunder/internal/mapping"
	"sunder/internal/meta"
	"sunder/internal/sched"
)

// DefaultCompileCacheCapacity is the compiled-machine cache's default size
// in rule sets.
const DefaultCompileCacheCapacity = 64

// compiledArtifact is everything compilation produces that is immutable
// and shareable: engines built from a cache hit share these and only clone
// the machine, skipping regex compilation, nibble transformation, striding
// and placement entirely.
type compiledArtifact struct {
	opts    Options
	byteNFA *automata.Automaton
	nibble  *automata.UnitAutomaton
	place   *mapping.Placement
	proto   *core.Machine
	// pruned is the dead-state count removed at compile time; engines built
	// from a hit must report it through Info().PrunedStates like the
	// original compile did. minSum and symClasses likewise persist the
	// certified-minimization digest so a hit reports the same
	// Info().MergedStates / SymbolClasses as the original compile.
	pruned     int
	minSum     analysis.MinimizeSummary
	symClasses int
	// pre is the compiled prefilter plan (nil when Options.Prefilter is
	// off); immutable and read-only at scan time, so hits share it.
	pre *prefilterPlan
	// backend/backendNote/autoChoice/metaIn/dfaPlan persist the resolved
	// backend and the lazy-DFA stepping plan; the per-engine DFA runner is
	// mutable and is NOT cached — hits build their own lazily.
	backend     string
	backendNote string
	autoChoice  meta.Choice
	metaIn      meta.Inputs
	dfaPlan     *dfa.Plan
}

var compileCache = sched.NewLRU[*compiledArtifact](DefaultCompileCacheCapacity)

// compileHitNS / compileMissNS accumulate the wall-clock cost of
// CompileCached lookups, split by outcome, so the serve path can report
// hit vs. miss latency (a hit is a clone, a miss the whole pipeline).
var (
	compileHitNS  atomic.Int64
	compileMissNS atomic.Int64
)

// CompileCached is Compile behind a process-wide LRU cache keyed by a
// content hash of the compiled configuration (every Options field and
// every pattern's expression and code). Repeated compiles of the same rule
// set skip the whole compile/mapping pipeline: a hit clones a pristine
// machine from the cached artifact, which is orders of magnitude cheaper.
// The returned engine is indistinguishable from a freshly compiled one.
// Compilation errors are not cached.
func CompileCached(patterns []Pattern, opts Options) (*Engine, error) {
	eng, _, err := CompileCachedTraced(patterns, opts)
	return eng, err
}

// CompileCachedTraced is CompileCached, additionally reporting whether the
// engine came from a cache hit. The serve path uses it to label compile
// spans and attribute lookup latency to the hit or miss population.
func CompileCachedTraced(patterns []Pattern, opts Options) (*Engine, bool, error) {
	start := time.Now()
	key := compileKey(patterns, opts)
	if art, ok := compileCache.Get(key); ok {
		eng := &Engine{
			opts:        art.opts,
			byteNFA:     art.byteNFA,
			nibble:      art.nibble,
			machine:     art.proto.Clone(),
			proto:       art.proto,
			place:       art.place,
			pruned:      art.pruned,
			minSum:      art.minSum,
			symClasses:  art.symClasses,
			pre:         art.pre,
			backend:     art.backend,
			backendNote: art.backendNote,
			autoChoice:  art.autoChoice,
			metaIn:      art.metaIn,
			dfaPlan:     art.dfaPlan,
		}
		compileHitNS.Add(time.Since(start).Nanoseconds())
		return eng, true, nil
	}
	eng, err := Compile(patterns, opts)
	if err != nil {
		return nil, false, err
	}
	compileCache.Put(key, &compiledArtifact{
		opts:        eng.opts,
		byteNFA:     eng.byteNFA,
		nibble:      eng.nibble,
		place:       eng.place,
		proto:       eng.proto,
		pruned:      eng.pruned,
		minSum:      eng.minSum,
		symClasses:  eng.symClasses,
		pre:         eng.pre,
		backend:     eng.backend,
		backendNote: eng.backendNote,
		autoChoice:  eng.autoChoice,
		metaIn:      eng.metaIn,
		dfaPlan:     eng.dfaPlan,
	})
	compileMissNS.Add(time.Since(start).Nanoseconds())
	return eng, false, nil
}

// compileKey hashes the full compiled configuration. Fields are length-
// prefixed so distinct pattern lists cannot collide by concatenation, and
// the Rate default is normalized so Options{} and Options{Rate: 4} share
// an entry.
func compileKey(patterns []Pattern, opts Options) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeBool := func(b bool) {
		if b {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	rate := opts.Rate
	if rate == 0 {
		rate = 4
	}
	writeInt(int64(rate))
	writeInt(int64(opts.ReportColumns))
	writeInt(int64(opts.MetadataBits))
	writeBool(opts.FIFO)
	writeBool(opts.SummarizeOnFull)
	// Prune changes the compiled automaton (dead states are removed before
	// placement): a pruned and an unpruned compile must not share an entry.
	// TestCompileKeyCoversOptions enumerates Options by reflection so a
	// future compile-affecting field cannot be forgotten here silently.
	writeBool(opts.Prune)
	// Minimize rewrites the compiled automaton (merged/pruned states change
	// the placement): minimized and unminimized compiles must not share an
	// entry.
	writeBool(opts.Minimize)
	// Prefilter changes the cached artifact (the literal plan rides in it).
	writeInt(int64(opts.Prefilter))
	// Backend changes the resolved dispatch that rides in the artifact (and
	// a forced "dfa" can fail where "auto" compiles): distinct backends must
	// not share an entry.
	writeInt(int64(len(opts.Backend)))
	h.Write([]byte(opts.Backend))
	writeInt(int64(len(patterns)))
	for _, p := range patterns {
		writeInt(int64(len(p.Expr)))
		h.Write([]byte(p.Expr))
		writeInt(int64(p.Code))
	}
	return string(h.Sum(nil))
}

// CompileCacheStats snapshots the compiled-machine cache.
type CompileCacheStats struct {
	// Hits and Misses count CompileCached lookups since process start.
	Hits   int64
	Misses int64
	// Entries is the number of rule sets currently cached, bounded by
	// Capacity.
	Entries  int
	Capacity int
	// HitNS and MissNS are the total wall-clock nanoseconds spent in
	// CompileCached lookups that hit (machine clone) and missed (full
	// compile pipeline), since process start. HitNS/Hits vs MissNS/Misses
	// is the measured per-lookup cost of each outcome.
	HitNS  int64
	MissNS int64
}

// CompileCacheInfo returns the cache's current occupancy, hit/miss
// counts, and cumulative hit/miss lookup latency.
func CompileCacheInfo() CompileCacheStats {
	hits, misses := compileCache.Stats()
	return CompileCacheStats{
		Hits:     hits,
		Misses:   misses,
		Entries:  compileCache.Len(),
		Capacity: compileCache.Capacity(),
		HitNS:    compileHitNS.Load(),
		MissNS:   compileMissNS.Load(),
	}
}

// SetCompileCacheCapacity resizes the compiled-machine cache, evicting
// least-recently-used entries as needed; n <= 0 clears and disables it.
func SetCompileCacheCapacity(n int) { compileCache.SetCapacity(n) }

// ResetCompileCache drops every cached compilation (hit/miss counts are
// kept). Mostly useful in tests and benchmarks.
func ResetCompileCache() { compileCache.Purge() }
