package sunder

import (
	"strings"
	"testing"

	"sunder/internal/workload"
)

// compareBackend asserts a backend result is observably identical to the
// sequential NFA core: same matches, Reports and ReportCycles. Kernel
// cycle counts are compared where the contract promises equality (both
// engines step every padded cycle); stall/flush counters are backend
// implementation detail and excluded.
func compareBackend(t *testing.T, label string, base, got *ScanResult) {
	t.Helper()
	if !matchesEqual(sortedMatches(base.Matches), sortedMatches(got.Matches)) {
		t.Errorf("%s: matches diverged (%d base vs %d backend)",
			label, len(base.Matches), len(got.Matches))
	}
	if base.Stats.Reports != got.Stats.Reports || base.Stats.ReportCycles != got.Stats.ReportCycles {
		t.Errorf("%s: reports %d/%d, want %d/%d",
			label, got.Stats.Reports, got.Stats.ReportCycles,
			base.Stats.Reports, base.Stats.ReportCycles)
	}
}

// TestBackendDifferential is the meta-engine acceptance battery: every
// benchmark workload compiled under Backend "auto" and forced "dfa" must be
// byte-identical to the sequential NFA core on Scan, ScanParallel (1–8
// workers) and Stream (chunks 1/13/97). Workloads whose configuration the
// lazy DFA does not support skip the forced leg (auto never fails).
func TestBackendDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full 19-benchmark differential in long mode only")
	}
	const inputLen = 6000
	workers := []int{1, 2, 4, 8}
	chunks := []int{1, 13, 97}
	for _, name := range workload.Names() {
		w, err := workload.Get(name, workload.DefaultScale, inputLen)
		if err != nil {
			t.Fatal(err)
		}
		base, err := fromByteNFA(w.Automaton, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bseq, err := base.Scan(w.Input)
		if err != nil {
			t.Fatal(err)
		}

		for _, backend := range []string{"auto", "dfa"} {
			opts := DefaultOptions()
			opts.Backend = backend
			eng, err := fromByteNFA(w.Automaton, opts)
			if err != nil {
				if backend == "dfa" && strings.Contains(err.Error(), "unsupported") {
					t.Logf("%s: forced dfa unsupported: %v", name, err)
					continue
				}
				t.Fatalf("%s/%s: %v", name, backend, err)
			}
			label := name + "/" + backend
			t.Logf("%s: resolved backend %s", label, eng.Info().Backend)

			seq, err := eng.Scan(w.Input)
			if err != nil {
				t.Fatal(err)
			}
			compareBackend(t, label+"/seq", bseq, seq)

			for _, nw := range workers {
				par, err := eng.ScanParallel(w.Input, ScanOptions{Workers: nw})
				if err != nil {
					t.Fatal(err)
				}
				compareBackend(t, label+"/par", bseq, par)
			}

			for _, chunk := range chunks {
				var got []Match
				st, err := eng.Clone().NewStream(func(m Match) { got = append(got, m) })
				if err != nil {
					t.Fatal(err)
				}
				for off := 0; off < len(w.Input); off += chunk {
					end := off + chunk
					if end > len(w.Input) {
						end = len(w.Input)
					}
					if _, err := st.Write(w.Input[off:end]); err != nil {
						t.Fatal(err)
					}
				}
				stats := st.Close()
				if !matchesEqual(sortedMatches(bseq.Matches), sortedMatches(got)) {
					t.Errorf("%s/stream chunk=%d: matches diverged (%d vs %d)",
						label, chunk, len(bseq.Matches), len(got))
				}
				if stats.Reports != bseq.Stats.Reports || stats.ReportCycles != bseq.Stats.ReportCycles {
					t.Errorf("%s/stream chunk=%d: reports %d/%d, want %d/%d",
						label, chunk, stats.Reports, stats.ReportCycles,
						bseq.Stats.Reports, bseq.Stats.ReportCycles)
				}
			}
		}

		// The per-call override on an unforced engine must agree too.
		if _, err := base.effectiveBackend("dfa"); err == nil {
			over, err := base.ScanParallel(w.Input, ScanOptions{Backend: "dfa"})
			if err != nil {
				t.Fatal(err)
			}
			compareBackend(t, name+"/override", bseq, over)
		}
	}
}

// FuzzDFA cross-checks the lazy-DFA backend against the NFA core on
// fuzz-chosen inputs over a panel of rule sets, through both the compiled
// backend and the per-call override.
func FuzzDFA(f *testing.F) {
	sets := [][]Pattern{
		{{Expr: `ab+c`, Code: 1}, {Expr: `zz`, Code: 2}},
		{{Expr: `GET /[a-z]+`, Code: 3}, {Expr: `needle`, Code: 4}},
		{{Expr: `(ab|a.)c`, Code: 5}},
		{{Expr: `a.*b`, Code: 6}, {Expr: `[0-9]{3}`, Code: 7}},
	}
	type pair struct{ base, dfa *Engine }
	pairs := make([]pair, 0, len(sets))
	for _, ps := range sets {
		base, err := Compile(ps, DefaultOptions())
		if err != nil {
			f.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Backend = "dfa"
		forced, err := Compile(ps, opts)
		if err != nil {
			f.Fatal(err)
		}
		pairs = append(pairs, pair{base, forced})
	}
	f.Add(uint8(0), []byte("xabbczzx"))
	f.Add(uint8(1), []byte("GET /admin needle"))
	f.Add(uint8(2), []byte("axc abc"))
	f.Add(uint8(3), []byte("a123b"))
	f.Fuzz(func(t *testing.T, sel uint8, input []byte) {
		if len(input) > 1024 {
			t.Skip("cap work per case")
		}
		p := pairs[int(sel)%len(pairs)]
		want, err := p.base.Scan(input)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.dfa.Scan(input)
		if err != nil {
			t.Fatal(err)
		}
		compareBackend(t, "fuzz/dfa", want, got)
		over, err := p.base.ScanParallel(input, ScanOptions{Backend: "dfa"})
		if err != nil {
			t.Fatal(err)
		}
		compareBackend(t, "fuzz/override", want, over)
	})
}
