package sunder

import (
	"strings"
	"testing"
)

// foldInput interleaves case-mangled matches of the case-insensitive
// patterns below with filler, exercising hits the exact-literal prefilter
// would miss.
func foldInput() []byte {
	var b strings.Builder
	filler := "the quick brown fox jumps over the lazy dog 0123456789 "
	plants := []string{
		"SELECT-FROM-WHERE", "select-from-where", "SeLeCt-FrOm-WhErE",
		"DELETE", "dElEtE", "InSeRt", "update",
	}
	for i := 0; i < 40; i++ {
		b.WriteString(filler)
		b.WriteString(plants[i%len(plants)])
	}
	b.WriteString(filler)
	return []byte(b.String())
}

// TestPrefilterFoldDifferential proves the case-folded prefilter is
// observably invisible: (?i) patterns whose exact variant expansion blows
// the literal caps compile to a folded literal set, and the filtered
// engine matches the unfiltered one byte for byte across the sequential,
// parallel and streaming paths.
func TestPrefilterFoldDifferential(t *testing.T) {
	patterns := []Pattern{
		{Expr: "(?i)select-from-where", Code: 1},
		{Expr: "(?i)(delete|insert|update)", Code: 2},
	}
	input := foldInput()

	base, err := Compile(patterns, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	filt, err := Compile(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := filt.Info().PrefilterStrategy; !strings.HasSuffix(st, "+fold") {
		t.Fatalf("prefilter strategy = %q, want a folded scanner", st)
	}
	for _, l := range filt.Info().PrefilterLiterals {
		if l != strings.ToLower(l) {
			t.Fatalf("literal %q not canonical lowercase", l)
		}
	}

	bseq, err := base.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(bseq.Matches) == 0 {
		t.Fatal("fold input produced no matches; test is vacuous")
	}
	fseq, err := filt.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	comparePrefiltered(t, "fold/seq", bseq, fseq)
	if fseq.Stats.SkippedCycles == 0 {
		t.Error("folded prefilter skipped nothing; filter not engaged")
	}

	for _, nw := range []int{1, 4} {
		fpar, err := filt.ScanParallel(input, ScanOptions{Workers: nw})
		if err != nil {
			t.Fatal(err)
		}
		comparePrefiltered(t, "fold/par", bseq, fpar)
	}

	for _, chunk := range []int{1, 13, 97} {
		var got []Match
		st, err := filt.Clone().NewStream(func(m Match) { got = append(got, m) })
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			if _, err := st.Write(input[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		stats := st.Close()
		if !matchesEqual(sortedMatches(bseq.Matches), sortedMatches(got)) {
			t.Errorf("fold/stream chunk=%d: matches diverged (%d vs %d)",
				chunk, len(bseq.Matches), len(got))
		}
		if stats.Reports != bseq.Stats.Reports || stats.ReportCycles != bseq.Stats.ReportCycles {
			t.Errorf("fold/stream chunk=%d: reports %d/%d, want %d/%d",
				chunk, stats.Reports, stats.ReportCycles,
				bseq.Stats.Reports, bseq.Stats.ReportCycles)
		}
	}
}

// TestPrefilterFoldExactStaysExact pins that case-sensitive rule sets keep
// the exact scanner: no fold marker, literals verbatim.
func TestPrefilterFoldExactStaysExact(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{{Expr: "Needle", Code: 1}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Info().PrefilterStrategy; strings.Contains(st, "fold") {
		t.Fatalf("case-sensitive pattern got folded strategy %q", st)
	}
	out, err := eng.Scan([]byte("..needle..NEEDLE..Needle.."))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Matches) != 1 {
		t.Fatalf("exact scan found %d matches, want 1", len(out.Matches))
	}
}
