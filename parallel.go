package sunder

import (
	"runtime"

	"sunder/internal/core"
	"sunder/internal/dfa"
	"sunder/internal/funcsim"
	"sunder/internal/meta"
	"sunder/internal/sched"
)

// ScanOptions configures the parallel scan paths (ScanParallel and
// ScanBatch). The zero value picks sensible defaults everywhere.
type ScanOptions struct {
	// Workers caps the number of worker goroutines; <= 0 uses GOMAXPROCS.
	Workers int
	// BatchSize bounds ScanBatch's in-flight queue: submission blocks once
	// that many scans are queued ahead of the workers (backpressure
	// instead of unbounded buffering). <= 0 selects 2× workers.
	BatchSize int
	// Backend overrides the engine's compiled backend for this call; ""
	// keeps the compiled choice and "auto" resolves as Options.Backend
	// "auto" would have. A "dfa" override on these entry points runs the
	// lazy DFA sequentially on a private runner (the DFA's state cache is
	// inherently serial), ignoring Workers — output stays byte-identical.
	// An unsupported "dfa" override is an error.
	Backend string
}

func (o ScanOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ScanParallel is Scan over worker goroutines: one large input is sharded
// across workers, each driving its own clone of the compiled machine, with
// per-shard warm-up replay sized to the automaton's dependence window so
// the merged output is byte-identical to sequential Scan — same matches in
// the same order, and the same KernelCycles, Reports and ReportCycles.
//
// StallCycles and Flushes are summed across the worker clones; each clone's
// report region fills on its shard's local history, so these two fields
// (and PerPU) describe the parallel execution itself and are not
// cycle-comparable to a sequential scan. Automata whose dependence window
// is unbounded (`.*`-style self-loops) and inputs too small to shard fall
// back to a sequential run internally — same results, one worker.
//
// ScanParallel never touches the engine's shared machine, so concurrent
// calls on one engine are safe. Under an armed fault policy it delegates
// to the sequential guarded Scan: the recovery protocol is strictly
// sequential (see SetFaultPolicy).
func (e *Engine) ScanParallel(input []byte, opts ScanOptions) (*ScanResult, error) {
	if e.injector != nil {
		return e.Scan(input)
	}
	backend, err := e.effectiveBackend(opts.Backend)
	if err != nil {
		return nil, err
	}
	if e.pre.enabled() {
		return e.scanPrefiltered(input, opts.workers())
	}
	if backend == meta.BackendDFA {
		return e.scanDFAFresh(input)
	}
	return e.scanSharded(input, opts)
}

// scanSharded is the sharded parallel run ScanParallel (and Scan on the
// "parallel" backend) execute: worker clones with dependence-window warm-up
// replay, merged back into sequential order.
func (e *Engine) scanSharded(input []byte, opts ScanOptions) (*ScanResult, error) {
	units := funcsim.BytesToUnits(input, 4)
	rr := sched.ParallelRun(e.proto, e.nibble, units, sched.RunConfig{
		Workers:      opts.workers(),
		RecordEvents: true,
		Collector:    e.telemetryCollector(),
	})
	out := &ScanResult{
		Stats: Stats{
			KernelCycles: rr.KernelCycles,
			StallCycles:  rr.StallCycles,
			Flushes:      rr.Flushes,
			Reports:      rr.Reports,
			ReportCycles: rr.ReportCycles,
		},
		PerPU: toPUStats(rr.PerPU),
	}
	for _, ev := range rr.Events {
		// Same phantom filter as Scan: matches "ending" in the pad tail of
		// the final vector are artifacts of Pad units.
		if ev.Unit >= int64(len(units)) {
			continue
		}
		out.Matches = append(out.Matches, Match{
			Position: ev.Unit / int64(e.nibble.SymbolUnits),
			Code:     ev.Code,
		})
	}
	return out, nil
}

// ScanBatch scans many independent inputs concurrently on a bounded worker
// pool: opts.Workers machine clones serve the queue, and at most
// opts.BatchSize scans wait in flight. results[i] corresponds to inputs[i]
// and is identical to what Scan(inputs[i]) on a fresh engine would return.
//
// Like ScanParallel it leaves the engine's shared machine alone and is
// safe to call concurrently. Under an armed fault policy the batch runs
// sequentially through the guarded Scan path.
func (e *Engine) ScanBatch(inputs [][]byte, opts ScanOptions) ([]*ScanResult, error) {
	results := make([]*ScanResult, len(inputs))
	if e.injector != nil {
		for i, in := range inputs {
			res, err := e.Scan(in)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	backend, err := e.effectiveBackend(opts.Backend)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers < 1 {
		workers = 1
	}
	queue := opts.BatchSize
	if queue <= 0 {
		queue = 2 * workers
	}
	col := e.telemetryCollector()
	machines := make([]*core.Machine, workers)
	for i := range machines {
		machines[i] = e.proto.Clone()
		if col != nil {
			machines[i].AttachTelemetry(col)
		}
	}
	// On the DFA backend each worker owns a private runner: inputs are
	// independent, so runners reset per input but keep their caches warm
	// across the batch.
	var runners []*dfa.Runner
	if backend == meta.BackendDFA && !e.pre.enabled() {
		runners = make([]*dfa.Runner, workers)
		for i := range runners {
			runners[i] = dfa.NewRunner(e.dfaPlan, dfa.DefaultConfig())
		}
	}
	pool := sched.NewPool(workers, queue)
	for i, in := range inputs {
		i, in := i, in
		if e.pre.enabled() {
			pool.Submit(func(int) {
				// The filtered scan clones its own window machines; the
				// pool's pre-built clones stay idle for this input.
				res, _ := e.scanPrefiltered(in, 1)
				results[i] = res
			})
			continue
		}
		if runners != nil {
			pool.Submit(func(worker int) {
				results[i] = e.scanDFAWith(runners[worker], in)
			})
			continue
		}
		units := funcsim.BytesToUnits(in, 4)
		pool.Submit(func(worker int) {
			m := machines[worker]
			m.Reset()
			r := m.Run(units, core.RunOptions{RecordEvents: true})
			out := &ScanResult{
				Stats: Stats{
					KernelCycles: r.KernelCycles,
					StallCycles:  r.StallCycles,
					Flushes:      r.Flushes,
					Reports:      r.Reports,
					ReportCycles: r.ReportCycles,
				},
				PerPU: toPUStats(m.PerPU()),
			}
			for _, ev := range r.Events {
				if ev.Unit >= int64(len(units)) {
					continue
				}
				out.Matches = append(out.Matches, Match{
					Position: ev.Unit / int64(e.nibble.SymbolUnits),
					Code:     ev.Code,
				})
			}
			results[i] = out
		})
	}
	pool.Wait()
	return results, nil
}

// Clone returns an independent engine sharing this engine's immutable
// compile artifacts (automata, placement) but owning its own pristine
// machine. Sequential scans and streams on different clones may run fully
// concurrently. Fault policies and telemetry attachments do not carry
// over — arm them per clone as needed.
func (e *Engine) Clone() *Engine {
	return &Engine{
		opts:        e.opts,
		byteNFA:     e.byteNFA,
		nibble:      e.nibble,
		machine:     e.proto.Clone(),
		proto:       e.proto,
		place:       e.place,
		pruned:      e.pruned,
		minSum:      e.minSum,
		symClasses:  e.symClasses,
		pre:         e.pre,
		backend:     e.backend,
		backendNote: e.backendNote,
		autoChoice:  e.autoChoice,
		metaIn:      e.metaIn,
		dfaPlan:     e.dfaPlan,
		// dfaRunner stays nil: the clone builds its own on first DFA scan.
	}
}
