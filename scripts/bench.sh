#!/usr/bin/env bash
# Benchmark regression harness for the parallel scan path.
#
# Records the workers-vs-speedup scaling study as machine-readable JSON
# (BENCH_parallel.json, or $1) and smoke-runs the parallel-scan and
# compile-cache microbenchmarks. Set BENCHTIME (e.g. 5x, 2s) for real
# measurements; the default 1x only proves the benches still run.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel.json}"
go run ./cmd/sunder-bench -par -json > "$out"
echo "wrote $out"

go test -run '^$' -bench 'ScanParallel|CompileCache' -benchtime "${BENCHTIME:-1x}" .
