#!/usr/bin/env bash
# Benchmark regression harness for the parallel scan path.
#
# Records the workers-vs-speedup scaling study as machine-readable JSON
# (BENCH_parallel.json, or $1) and smoke-runs the parallel-scan and
# compile-cache microbenchmarks. Set BENCHTIME (e.g. 5x, 2s) for real
# measurements; the default 1x only proves the benches still run.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel.json}"
go run ./cmd/sunder-bench -par -json > "$out"
test -s "$out" || { echo "bench.sh: $out is empty" >&2; exit 1; }
echo "wrote $out"

# Record the literal-prefilter study: every benchmark filtered vs
# unfiltered, on its own input and on a literal-free stream. The binary
# enforces the acceptance gates itself — byte-identical output on every
# row, and at least PREFILTER_MIN_SPEEDUP (default 5x) on literal-free
# input wherever the filter engaged — so a regression fails this script.
prefilter_out="${PREFILTER_BENCH_OUT:-BENCH_prefilter.json}"
go run ./cmd/sunder-bench -prefilter \
  -prefilter-min-speedup "${PREFILTER_MIN_SPEEDUP:-5}" -json > "$prefilter_out"
test -s "$prefilter_out" || { echo "bench.sh: $prefilter_out is empty" >&2; exit 1; }
grep -q '"strategy"' "$prefilter_out" || {
  echo "bench.sh: $prefilter_out missing prefilter rows" >&2; exit 1; }
echo "wrote $prefilter_out"

# Record the certified-minimization study: per-workload state compression
# ratio, bisim/prefix merge breakdown, symbol classes and minimize+verify
# wall time. The binary enforces the acceptance gates itself — every
# equivalence certificate must verify and every minimized machine must
# reproduce the baseline output exactly — so a divergence fails this
# script before the numbers are published.
minimize_out="${MINIMIZE_BENCH_OUT:-BENCH_minimize.json}"
go run ./cmd/sunder-bench -minimize -json > "$minimize_out"
test -s "$minimize_out" || { echo "bench.sh: $minimize_out is empty" >&2; exit 1; }
grep -q '"compression_ratio"' "$minimize_out" || {
  echo "bench.sh: $minimize_out missing minimization rows" >&2; exit 1; }
echo "wrote $minimize_out"

# Optionally record the meta-engine backend-selection study: every
# benchmark compiled under Backend "auto" and every forced backend, with
# output equality checked per row. The binary enforces the acceptance
# gates itself — byte-identical output across backends, and "auto" never
# more than META_MAX_SLOWDOWN (default 10%) slower than the best forced
# backend on any workload — so a selection regression fails this script.
if [ "${META_BENCH:-0}" != "0" ]; then
  meta_out="${META_BENCH_OUT:-BENCH_meta.json}"
  go run ./cmd/sunder-bench -meta \
    -meta-max-slowdown "${META_MAX_SLOWDOWN:-0.10}" -json > "$meta_out"
  test -s "$meta_out" || { echo "bench.sh: $meta_out is empty" >&2; exit 1; }
  grep -q '"best_backend"' "$meta_out" || {
    echo "bench.sh: $meta_out missing meta rows" >&2; exit 1; }
  echo "wrote $meta_out"
fi

# Optionally record the network scan service study (all 19 benchmark
# inputs through sunder-serve's in-process server). Off by default: it is
# a service-level measurement, not a simulator one.
if [ "${SERVE_BENCH:-0}" != "0" ]; then
  serve_out="${SERVE_BENCH_OUT:-BENCH_serve.json}"
  go run ./cmd/sunder-serve -loadgen -json > "$serve_out"
  test -s "$serve_out" || { echo "bench.sh: $serve_out is empty" >&2; exit 1; }
  echo "wrote $serve_out"
fi

# Optionally record the fault-tolerant cluster study: all 19 benchmark
# inputs through a replicated in-process cluster under open-loop arrivals
# with the default deterministic chaos mix (availability, retry/hedge
# rates, p50/p99/p999). Off by default like SERVE_BENCH.
if [ "${CLUSTER_BENCH:-0}" != "0" ]; then
  cluster_out="${CLUSTER_BENCH_OUT:-BENCH_cluster.json}"
  go run ./cmd/sunder-serve -loadgen -json -chaos \
    -cluster "${CLUSTER_NODES:-3}" -replicas "${CLUSTER_REPLICAS:-2}" \
    -requests "${CLUSTER_REQUESTS:-24}" > "$cluster_out"
  test -s "$cluster_out" || { echo "bench.sh: $cluster_out is empty" >&2; exit 1; }
  grep -q '"availability"' "$cluster_out" || {
    echo "bench.sh: $cluster_out missing availability rows" >&2; exit 1; }
  echo "wrote $cluster_out"
fi

# `go test -bench` exits 0 even when individual benchmarks fail to match or
# a FAIL line slips through under -run '^$'; capture the output and check
# explicitly so a silent regression cannot pass the harness.
bench_out="$(go test -run '^$' -bench 'ScanParallel|CompileCache|TelemetryOverhead|SpanOverhead' -benchtime "${BENCHTIME:-1x}" . 2>&1)" || {
  echo "$bench_out"
  echo "bench.sh: go test -bench failed" >&2
  exit 1
}
echo "$bench_out"
if grep -q '^FAIL' <<<"$bench_out"; then
  echo "bench.sh: benchmark run reported FAIL" >&2
  exit 1
fi
if ! grep -q '^Benchmark' <<<"$bench_out"; then
  echo "bench.sh: no benchmarks matched the pattern" >&2
  exit 1
fi

# Telemetry-overhead guard: with instrumentation disabled, the hot path
# must stay within 1.5x of the spans-off baseline of the same benchmark
# family (TelemetryOverhead/off vs /counters would drift apart only if a
# guard branch turned into real work; SpanOverhead/off vs /all bounds the
# span sites the same way). Only meaningful with a real BENCHTIME — a 1x
# smoke run is all warm-up noise, so the guard is skipped there.
if [ "${BENCHTIME:-1x}" != "1x" ]; then
  overhead_guard() { # name_off name_on max_ratio
    local off on
    off=$(awk -v n="$1" '$1 ~ n {print $3; exit}' <<<"$bench_out")
    on=$(awk -v n="$2" '$1 ~ n {print $3; exit}' <<<"$bench_out")
    if [ -n "$off" ] && [ -n "$on" ]; then
      awk -v off="$off" -v on="$on" -v max="$3" -v a="$1" -v b="$2" 'BEGIN {
        if (off > 0 && on / off > max) {
          printf "bench.sh: %s (%s ns/op) exceeds %.1fx of %s (%s ns/op)\n", b, on, max, a, off
          exit 1
        }
      }' || exit 1
    fi
  }
  overhead_guard 'BenchmarkSpanOverhead/off' 'BenchmarkSpanOverhead/sampled-16' 1.5
  overhead_guard 'BenchmarkTelemetryOverhead/off' 'BenchmarkTelemetryOverhead/counters' 1.5
  echo "bench.sh: telemetry overhead guard passed"
fi
