#!/usr/bin/env bash
# End-to-end smoke test of the network scan service over real HTTP:
# build sunder-serve, start it, upload a rule set, run a batched scan and
# a streaming scan, check the matches, and shut the server down gracefully
# (SIGTERM must exit cleanly). Requires curl; uses jq when available.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:${SERVE_PORT:-8471}"
base="http://$addr"

go build -o /tmp/sunder-serve ./cmd/sunder-serve
/tmp/sunder-serve -addr "$addr" -pool 2 -trace-sample 1 &
srv_pid=$!
cleanup() { kill "$srv_pid" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
  if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "$base/healthz" >/dev/null || { echo "serve_smoke: server never came up" >&2; exit 1; }

# Upload a rule set (one prunable rule, exercising the Prune cache key).
put=$(curl -sf -X PUT "$base/rulesets/smoke" -d '{
  "patterns": [
    {"expr": "GET /admin", "code": 100},
    {"expr": "(ab|a.)c", "code": 7}
  ],
  "options": {"prune": true}
}')
echo "ruleset: $put"
grep -q '"pruned_states":[1-9]' <<<"$put" || {
  echo "serve_smoke: expected pruned_states > 0 in ruleset info" >&2; exit 1; }

# Batched raw scan: the input contains two "GET /admin" hits and one "abc".
scan=$(curl -sf -X POST "$base/rulesets/smoke/scan" \
  -H 'Content-Type: application/octet-stream' \
  --data-binary 'xx GET /admin yy abc zz GET /admin')
echo "scan: $scan"
if command -v jq >/dev/null; then
  n=$(jq '[.results[0].matches[].code] | length' <<<"$scan")
  [ "$n" -eq 3 ] || { echo "serve_smoke: want 3 matches, got $n" >&2; exit 1; }
else
  [ "$(grep -o '"code"' <<<"$scan" | wc -l)" -eq 3 ] || {
    echo "serve_smoke: want 3 matches in $scan" >&2; exit 1; }
fi

# Streaming scan: NDJSON lines, terminated by a done line with stats.
stream=$(curl -sf -X POST "$base/rulesets/smoke/stream" \
  -H 'Content-Type: application/octet-stream' \
  --data-binary 'pre GET /admin post abc tail')
echo "stream: $stream"
grep -q '"match"' <<<"$stream" || { echo "serve_smoke: stream had no matches" >&2; exit 1; }
grep -q '"done":true' <<<"$stream" || { echo "serve_smoke: stream had no done line" >&2; exit 1; }

# Metrics reflect the traffic, with the right Content-Type, the per-ruleset
# latency quantiles and the per-reason shed counters.
metrics_headers=$(curl -sfi "$base/metrics")
grep -qi '^content-type: text/plain; charset=utf-8' <<<"$metrics_headers" || {
  echo "serve_smoke: /metrics Content-Type is not text/plain" >&2; exit 1; }
metrics=$(curl -sf "$base/metrics")
grep -q '^server_scans_total [1-9]' <<<"$metrics" || {
  echo "serve_smoke: metrics missing scan count" >&2; exit 1; }
grep -q 'server_scan_latency_ns_p99{ruleset="smoke"}' <<<"$metrics" || {
  echo "serve_smoke: metrics missing per-ruleset latency quantiles" >&2; exit 1; }
grep -q 'server_shed_total{ruleset="smoke",reason="capacity"}' <<<"$metrics" || {
  echo "serve_smoke: metrics missing shed counters" >&2; exit 1; }

# JSON metrics view: application/json, with server-side SLO quantiles.
json_headers=$(curl -sfi "$base/metrics?format=json")
grep -qi '^content-type: application/json' <<<"$json_headers" || {
  echo "serve_smoke: /metrics?format=json Content-Type is not application/json" >&2; exit 1; }
mjson=$(curl -sf "$base/metrics?format=json")
if command -v jq >/dev/null; then
  p50=$(jq '.rulesets.smoke.latency.p50_ns' <<<"$mjson")
  [ "$p50" -gt 0 ] || { echo "serve_smoke: JSON metrics p50_ns not positive: $p50" >&2; exit 1; }
  jq -e '.rulesets.smoke.shed.capacity >= 0 and .compile_cache.misses >= 1' >/dev/null <<<"$mjson" || {
    echo "serve_smoke: JSON metrics shape wrong" >&2; exit 1; }
else
  grep -q '"p50_ns":[1-9]' <<<"$mjson" || {
    echo "serve_smoke: JSON metrics missing positive p50_ns" >&2; exit 1; }
fi

# Trace smoke: the merged Chrome trace is valid JSON holding the sampled
# request spans; ?format=spans yields one JSON object per line.
trace=$(curl -sf "$base/trace")
if command -v jq >/dev/null; then
  nspans=$(jq '[.traceEvents[] | select(.pid == 1)] | length' <<<"$trace")
  [ "$nspans" -gt 0 ] || { echo "serve_smoke: trace has no request spans" >&2; exit 1; }
else
  grep -q '"name":"scan"' <<<"$trace" || {
    echo "serve_smoke: trace missing scan span" >&2; exit 1; }
fi
spans=$(curl -sf "$base/trace?format=spans")
grep -q '"name":"pool_wait"' <<<"$spans" || {
  echo "serve_smoke: span JSONL missing pool_wait child" >&2; exit 1; }

# Graceful shutdown: SIGTERM, clean exit.
kill -TERM "$srv_pid"
wait "$srv_pid" || { echo "serve_smoke: server exited non-zero on SIGTERM" >&2; exit 1; }
trap - EXIT

# Cluster mode: the same front door served by N replicated in-process nodes
# behind the resilient client. Scans must carry the end-to-end digest, and
# the cluster metrics must account for the traffic.
cluster_nodes="${SERVE_CLUSTER:-3}"
if [ "$cluster_nodes" != "0" ]; then
  caddr="127.0.0.1:${SERVE_CLUSTER_PORT:-8472}"
  cbase="http://$caddr"
  /tmp/sunder-serve -addr "$caddr" -cluster "$cluster_nodes" -replicas 2 &
  csrv_pid=$!
  cleanup_cluster() { kill "$csrv_pid" 2>/dev/null || true; }
  trap cleanup_cluster EXIT

  for _ in $(seq 1 50); do
    if curl -sf "$cbase/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -sf "$cbase/healthz" >/dev/null || { echo "serve_smoke: cluster never came up" >&2; exit 1; }

  curl -sf -X PUT "$cbase/rulesets/smoke" -d '{
    "patterns": [{"expr": "GET /admin", "code": 100}],
    "options": {"prune": true}
  }' >/dev/null

  cscan_headers=$(curl -sfi -X POST "$cbase/rulesets/smoke/scan" \
    -H 'Content-Type: application/octet-stream' \
    --data-binary 'xx GET /admin yy')
  grep -qiE '^x-sunder-scan-digest: [0-9a-f]{64}' <<<"$cscan_headers" || {
    echo "serve_smoke: cluster scan missing end-to-end digest header" >&2; exit 1; }
  grep -q '"code":100' <<<"$cscan_headers" || {
    echo "serve_smoke: cluster scan missing match" >&2; exit 1; }

  cnodes=$(curl -sf "$cbase/nodes")
  [ "$(grep -o '"healthy":true' <<<"$cnodes" | wc -l)" -eq "$cluster_nodes" ] || {
    echo "serve_smoke: want $cluster_nodes healthy nodes, got: $cnodes" >&2; exit 1; }

  cmetrics=$(curl -sf "$cbase/metrics")
  grep -q '^cluster_requests_total [1-9]' <<<"$cmetrics" || {
    echo "serve_smoke: cluster metrics missing request count" >&2; exit 1; }
  grep -q "^cluster_nodes $cluster_nodes" <<<"$cmetrics" || {
    echo "serve_smoke: cluster metrics missing node count" >&2; exit 1; }

  kill -TERM "$csrv_pid"
  wait "$csrv_pid" || { echo "serve_smoke: cluster exited non-zero on SIGTERM" >&2; exit 1; }
  trap - EXIT
fi
echo "serve_smoke: OK"
