// Genomics: motif scanning over the 4-symbol DNA alphabet — the paper's
// poster case for the reconfigurable processing rate. Genomic symbol sets
// are tiny, so the automata transform compactly to nibbles, and the same
// motif set can trade device area for throughput by reconfiguring the rate
// (4-, 8- or 16-bit per cycle) with no hardware change.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sunder"
)

// motifs uses IUPAC degenerate codes expanded into character classes:
// R=[AG], Y=[CT], W=[AT], N=[ACGT].
var motifs = []sunder.Pattern{
	{Expr: `TATA[AT]A[AT]`, Code: 1},    // TATA box (TATAWAW)
	{Expr: `GGATCC`, Code: 2},           // BamHI restriction site
	{Expr: `GAATTC`, Code: 3},           // EcoRI restriction site
	{Expr: `CCA..........TGG`, Code: 4}, // CCANNNNNNNNNTGG (XcmI-like)
	{Expr: `[AG]GGTA[CT]`, Code: 5},     // RGGTAY splice-ish motif
	{Expr: `CG(CG)+`, Code: 6},          // CpG island fragment
}

func main() {
	genome := synthesize(200_000)

	fmt.Println("rate reconfiguration on the same motif set:")
	fmt.Printf("%8s %14s %12s %8s\n", "rate", "device states", "bits/cycle", "PUs")
	for _, rate := range []int{1, 2, 4} {
		opts := sunder.DefaultOptions()
		opts.Rate = rate
		eng, err := sunder.Compile(motifs, opts)
		if err != nil {
			log.Fatal(err)
		}
		info := eng.Info()
		fmt.Printf("%8d %14d %12d %8d\n", rate, info.DeviceStates, 4*info.Rate, info.PUs)
	}

	// Scan at full 16-bit rate.
	eng, err := sunder.Compile(motifs, sunder.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Scan(genome)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int32]int{}
	for _, m := range res.Matches {
		counts[m.Code]++
	}
	names := map[int32]string{1: "TATA box", 2: "BamHI", 3: "EcoRI", 4: "XcmI-like", 5: "RGGTAY", 6: "CpG run"}
	fmt.Printf("\nscanned %d bases: %d motif hits in %d report cycles (overhead %.3fx)\n",
		len(genome), res.Stats.Reports, res.Stats.ReportCycles, res.Stats.Overhead())
	for code := int32(1); code <= 6; code++ {
		fmt.Printf("  %-10s %6d sites\n", names[code], counts[code])
	}
	if len(res.Matches) > 0 {
		m := res.Matches[0]
		lo := m.Position - 15
		if lo < 0 {
			lo = 0
		}
		fmt.Printf("first hit: %s @%d (...%s)\n", names[m.Code], m.Position, genome[lo:m.Position+1])
	}
}

// synthesize builds a random genome with planted motif instances.
func synthesize(n int) []byte {
	rng := rand.New(rand.NewSource(7))
	bases := []byte("ACGT")
	g := make([]byte, n)
	for i := range g {
		g[i] = bases[rng.Intn(4)]
	}
	plant := func(pos int, s string) {
		if pos+len(s) <= n {
			copy(g[pos:], s)
		}
	}
	for i := 0; i < n; i += 9973 {
		plant(i, "TATAAAAA")
		plant(i+400, "GGATCC")
		plant(i+800, "GAATTC")
		plant(i+1200, "CCA"+strings.Repeat("T", 10)+"TGG")
		plant(i+1600, "CGCGCGCG")
	}
	return g
}
