// Data mining: SPM-style subsequence patterns with dense, bursty reporting
// — the workload class that breaks conventional reporting architectures
// (Table 1: SPM generates 1394 simultaneous reports every ~30 cycles). The
// example shows both full cycle-accurate reporting and the in-hardware
// summarization mode, which is all a frequency-mining loop actually needs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sunder"
)

func main() {
	// Subsequence patterns over a retail-like item alphabet: item, any
	// gap, item, any gap, transaction-end marker ';'. Once a pattern's
	// items have appeared in order, every transaction end reports it —
	// the source of SPM's bursts.
	patterns := []sunder.Pattern{
		{Expr: `b.*m.*;`, Code: 1}, // bread → milk
		{Expr: `b.*e.*;`, Code: 2}, // bread → eggs
		{Expr: `m.*e.*;`, Code: 3}, // milk → eggs
		{Expr: `c.*w.*;`, Code: 4}, // cheese → wine
		{Expr: `w.*c.*;`, Code: 5}, // wine → cheese
		{Expr: `b.*m.*e.*;`, Code: 6},
	}

	transactions := synthesize(4000)

	// Mode 1: exact reporting with the FIFO drain.
	eng, err := sunder.Compile(patterns, sunder.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Scan(transactions)
	if err != nil {
		log.Fatal(err)
	}
	support := map[int32]int{}
	for _, m := range res.Matches {
		support[m.Code]++
	}
	fmt.Printf("exact mode: %d reports in %d report cycles (burst %.1f/cycle), overhead %.3fx\n",
		res.Stats.Reports, res.Stats.ReportCycles,
		float64(res.Stats.Reports)/float64(max(res.Stats.ReportCycles, 1)), res.Stats.Overhead())
	for code := int32(1); code <= 6; code++ {
		fmt.Printf("  pattern %d: support %d\n", code, support[code])
	}

	// Mode 2: the mining loop only needs "did pattern P occur in this
	// input window?" — report summarization answers that in hardware
	// with a column-wise NOR over the report region, no bulk transfer.
	opts := sunder.DefaultOptions()
	opts.FIFO = false
	opts.SummarizeOnFull = true
	sumEng, err := sunder.Compile(patterns, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sumEng.Scan(transactions); err != nil {
		log.Fatal(err)
	}
	fired := sumEng.Summarize()
	fmt.Printf("\nsummarized mode: patterns that occurred at least once: ")
	for code := int32(1); code <= 6; code++ {
		if fired[code] {
			fmt.Printf("%d ", code)
		}
	}
	fmt.Println()
}

// synthesize emits transactions of items ended by ';'.
func synthesize(n int) []byte {
	rng := rand.New(rand.NewSource(3))
	items := []byte("bmecwxyz")
	var out []byte
	for t := 0; t < n; t++ {
		k := rng.Intn(5) + 2
		for i := 0; i < k; i++ {
			out = append(out, items[rng.Intn(len(items))])
		}
		out = append(out, ';')
	}
	return out
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
