// Quickstart: compile two rules, scan a buffer, print every match and the
// device's view of the run.
package main

import (
	"fmt"
	"log"

	"sunder"
)

func main() {
	// A pattern set: a literal rule and a class/quantifier rule. Each
	// rule carries a report code that identifies it in matches.
	eng, err := sunder.Compile([]sunder.Pattern{
		{Expr: `needle`, Code: 1},
		{Expr: `ha+ystack`, Code: 2},
	}, sunder.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	info := eng.Info()
	fmt.Printf("compiled: %d byte-NFA states -> %d device states at %d bits/cycle on %d PU(s)\n",
		info.ByteStates, info.DeviceStates, 4*info.Rate, info.PUs)

	input := []byte("hay hay needle haaaystack needleneedle")
	res, err := eng.Scan(input)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.Matches {
		fmt.Printf("rule %d matched ending at byte %d: ...%q\n",
			m.Code, m.Position, tail(input, m.Position))
	}
	fmt.Printf("device: %d cycles, %d stall cycles, overhead %.3fx, %d report cycles\n",
		res.Stats.KernelCycles, res.Stats.StallCycles, res.Stats.Overhead(), res.Stats.ReportCycles)

	// The architectural simulator is validated against the functional
	// simulator; Verify re-checks it for this exact input.
	if err := eng.Verify(input); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: device reports match the reference NFA exactly")
}

func tail(input []byte, end int64) string {
	start := end - 9
	if start < 0 {
		start = 0
	}
	return string(input[start : end+1])
}
