// Network intrusion detection: a Snort-like rule set scanning a stream of
// packets with the FIFO reporting strategy — the paper's motivating
// real-time scenario, where reports must reach the host without stalling
// the match pipeline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sunder"
)

// rules is a small Snort-flavoured set: protocol tokens, an exploit
// signature with a binary prefix, and a scanner fingerprint with classes.
var rules = []sunder.Pattern{
	{Expr: `GET /admin`, Code: 100},
	{Expr: `POST /login`, Code: 101},
	{Expr: `\x90\x90\x90\x90`, Code: 200}, // NOP sled
	{Expr: `/etc/passwd`, Code: 201},
	{Expr: `User-Agent: (sqlmap|nikto)`, Code: 202},
	{Expr: `SELECT .* FROM`, Code: 203},
	{Expr: `%3Cscript%3E`, Code: 204},
	{Expr: `\\x[0-9a-f]{2}\\x[0-9a-f]{2}`, Code: 205},
}

func main() {
	opts := sunder.DefaultOptions() // 16-bit processing, FIFO drain on
	eng, err := sunder.Compile(rules, opts)
	if err != nil {
		log.Fatal(err)
	}
	info := eng.Info()
	fmt.Printf("NIDS engine: %d rules, %d device states, %d PU(s), report region %d entries/PU\n",
		len(rules), info.DeviceStates, info.PUs, info.RegionCapacity)

	// Stream synthetic traffic: benign requests with injected attacks.
	alerts := 0
	stream, err := eng.NewStream(func(m sunder.Match) {
		alerts++
		if alerts <= 10 {
			fmt.Printf("ALERT rule %d at byte offset %d\n", m.Code, m.Position)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for pkt := 0; pkt < 200; pkt++ {
		stream.Write(packet(rng, pkt))
	}
	stats := stream.Close()

	fmt.Printf("scanned %d bytes in %d packets: %d alerts\n", stream.BytesIn(), 200, alerts)
	fmt.Printf("device: %d cycles, %d stalls (overhead %.4fx), %d report-buffer overflows\n",
		stats.KernelCycles, stats.StallCycles, stats.Overhead(), stats.Flushes)
	if stats.StallCycles == 0 {
		fmt.Println("the FIFO drain kept reporting completely stall-free: line-rate matching")
	}
	fmt.Printf("modeled line rate at this overhead: %.1f Gbit/s (14nm, 16-bit processing)\n",
		eng.ThroughputGbps(stats.Overhead()))
}

// packet synthesizes one request; every 13th packet carries an attack.
func packet(rng *rand.Rand, id int) []byte {
	paths := []string{"/", "/index.html", "/api/v1/items", "/static/app.js"}
	p := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: example.com\r\nUser-Agent: curl/8.0\r\n\r\n",
		paths[rng.Intn(len(paths))])
	switch {
	case id%13 == 5:
		p = "GET /admin HTTP/1.1\r\nUser-Agent: nikto\r\n\r\n"
	case id%13 == 9:
		p = "POST /login HTTP/1.1\r\n\r\nuser=x&q=SELECT name FROM users"
	case id%13 == 12:
		p = "GET /download?f=/etc/passwd HTTP/1.1\r\n\r\n\x90\x90\x90\x90payload"
	}
	return []byte(p)
}
