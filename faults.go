package sunder

import (
	"sunder/internal/automata"
	"sunder/internal/faults"
	"sunder/internal/funcsim"
)

// FaultPolicy configures fault injection and recovery on the simulated
// device. Sunder's subarrays hold configuration and report data in the same
// 8T cells, so memory faults corrupt matching and reporting in place; with
// a policy set, the engine runs every scan under a recovery guard that
// detects corruption (configuration scrubbing, report-entry parity, region
// audits, a shadow functional simulator) and transparently rewinds and
// re-executes from periodic checkpoints — quarantining persistently
// defective processing units onto spares.
//
// The zero value of the injection fields disables injection, leaving a
// detection-only guard; zero recovery fields select the defaults.
type FaultPolicy struct {
	// Seed makes the fault process reproducible.
	Seed int64
	// MatchFlipRate and ReportFlipRate are per-cycle probabilities of one
	// transient bit flip in the match rows / a resident report entry.
	MatchFlipRate  float64
	ReportFlipRate float64
	// StuckXbarFaults plants this many permanent stuck-at crossbar-switch
	// defects at random locations.
	StuckXbarFaults int
	// DrainDropRate is the probability a FIFO-drained report row is
	// silently lost before reaching the host.
	DrainDropRate float64
	// CheckpointInterval is the recovery window in device cycles (default
	// 256); MaxRetries caps re-executions of one window before a PU is
	// quarantined (default 3); BackoffCycles is the first retry's stall
	// penalty, doubling per retry (default 64); SparePUs is the quarantine
	// budget (default 8; each quarantine relocates a 4-PU cluster).
	CheckpointInterval int
	MaxRetries         int
	BackoffCycles      int
	SparePUs           int
}

// DefaultFaultPolicy returns the default recovery parameters with no
// injected faults.
func DefaultFaultPolicy() FaultPolicy {
	p := faults.DefaultPolicy()
	return FaultPolicy{
		CheckpointInterval: p.CheckpointInterval,
		MaxRetries:         p.MaxRetries,
		BackoffCycles:      p.BackoffCycles,
		SparePUs:           p.SparePUs,
	}
}

// internal converts to the internal policy type.
func (p FaultPolicy) internal() faults.Policy {
	return faults.Policy{
		Seed:               p.Seed,
		MatchFlipRate:      p.MatchFlipRate,
		ReportFlipRate:     p.ReportFlipRate,
		StuckXbarFaults:    p.StuckXbarFaults,
		DrainDropRate:      p.DrainDropRate,
		CheckpointInterval: p.CheckpointInterval,
		MaxRetries:         p.MaxRetries,
		BackoffCycles:      p.BackoffCycles,
		SparePUs:           p.SparePUs,
	}
}

// FaultReport summarizes the fault activity of one guarded scan.
type FaultReport struct {
	// Injected counts fault manifestations (flips, stuck-at assertions,
	// dropped drain rows); Detected counts detected manifestations.
	Injected int64
	Detected int64
	// Recoveries counts checkpoint windows that committed after at least
	// one rewind; QuarantinedPUs lists PUs retired onto spares.
	Recoveries     int64
	QuarantinedPUs []int
	// Slowdown is total cycles spent (committed, re-executed, backoff)
	// over committed cycles — the price of recovery.
	Slowdown float64
}

// SetFaultPolicy arms (or, with nil, disarms) fault injection and recovery
// for subsequent scans and streams. The fault process is created eagerly so
// permanent defects and quarantine state persist across scans on the same
// engine.
func (e *Engine) SetFaultPolicy(p *FaultPolicy) error {
	if p == nil {
		e.faultPol = nil
		e.injector = nil
		e.machine.AttachFaults(nil)
		return nil
	}
	pol := p.internal()
	inj, err := faults.NewInjector(pol)
	if err != nil {
		return err
	}
	e.faultPol = &pol
	e.injector = inj
	return nil
}

// FaultPolicySet reports whether a fault policy is armed.
func (e *Engine) FaultPolicySet() bool { return e.injector != nil }

// newGuard wraps the engine's current machine in a recovery guard, carrying
// any attached telemetry collector over to it.
func (e *Engine) newGuard() (*faults.Guard, error) {
	tel := e.machine.Telemetry()
	g, err := faults.NewGuard(e.machine, e.nibble, e.place, *e.faultPol, e.injector)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		g.AttachTelemetry(tel)
	}
	return g, nil
}

// adoptGuard takes over the guard's (possibly quarantine-rebuilt) machine
// and placement as the engine's current device.
func (e *Engine) adoptGuard(g *faults.Guard) {
	e.machine = g.Machine()
	e.place = g.Placement()
}

// scanGuarded is Scan under an armed fault policy: input is executed in
// checkpointed windows and matches are taken only from committed windows,
// so the result of a recovered scan is identical to a fault-free one.
func (e *Engine) scanGuarded(units []funcsim.Unit) (*ScanResult, error) {
	g, err := e.newGuard()
	if err != nil {
		return nil, err
	}
	out := &ScanResult{}
	seen := make(map[streamKey]bool)
	rate := int64(e.machine.Config().Rate)
	g.OnReportCycle(func(cycle int64, states []automata.StateID) {
		clear(seen)
		nrep := 0
		for _, id := range states {
			for _, r := range e.nibble.States[id].Reports {
				k := streamKey{offset: r.Offset, origin: r.Origin}
				if seen[k] {
					continue
				}
				seen[k] = true
				nrep++
				// Matches ending in the pad tail of the final vector are
				// phantom (Pad satisfies any-symbol positions); drop them.
				if unit := cycle*rate + int64(r.Offset); unit < int64(len(units)) {
					out.Matches = append(out.Matches, Match{
						Position: unit / int64(e.nibble.SymbolUnits),
						Code:     r.Code,
					})
				}
			}
		}
		out.Stats.Reports += int64(nrep)
		out.Stats.ReportCycles++
	})
	fstats, err := g.Run(units)
	e.adoptGuard(g)
	if err != nil {
		return nil, err
	}
	m := e.machine
	out.Stats.KernelCycles = m.KernelCycles()
	out.Stats.StallCycles = m.StallCycles()
	out.Stats.Flushes = m.Flushes()
	out.PerPU = e.PerPU()
	out.Faults = &FaultReport{
		Injected:       fstats.Injected.Total(),
		Detected:       fstats.Detected(),
		Recoveries:     fstats.Recoveries,
		QuarantinedPUs: fstats.QuarantinedPUs,
		Slowdown:       fstats.Slowdown(),
	}
	return out, nil
}
