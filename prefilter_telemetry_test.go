package sunder

import (
	"strings"
	"testing"
)

// TestPrefilterTelemetryExact pins the counter contract: across filtered
// scans — sequential and parallel — the scanned/skipped cycle counters
// partition the input exactly, and every prefilter counter surfaces in the
// WriteMetrics text dump.
func TestPrefilterTelemetryExact(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{{Expr: `alert[0-9]`, Code: 5}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.pre.enabled() {
		t.Fatalf("filter not enabled: %s", eng.Info().PrefilterStrategy)
	}
	tel := NewTelemetry(TelemetryOptions{})
	eng.SetTelemetry(tel)

	input := []byte(strings.Repeat("background traffic ", 300) + "alert7" +
		strings.Repeat(" more background", 200))
	var wantTotal, wantScans int64
	for _, workers := range []int{1, 2, 4} {
		res, err := eng.ScanParallel(input, ScanOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.SkippedCycles == 0 {
			t.Fatalf("workers=%d: filter skipped nothing: %+v", workers, res.Stats)
		}
		wantTotal += res.Stats.KernelCycles + res.Stats.SkippedCycles
		wantScans++
		scanned := tel.CounterValue(MetricPrefilterScans)
		cycles := tel.CounterValue(MetricPrefilterScannedCycles) +
			tel.CounterValue(MetricPrefilterSkippedCycles)
		if scanned != wantScans {
			t.Errorf("workers=%d: %s = %d, want %d", workers, MetricPrefilterScans, scanned, wantScans)
		}
		// The partition is exact, not approximate: scanned + skipped must
		// reconstruct every padded input cycle across all scans so far, with
		// no double count from shard warm-up overlap.
		if cycles != wantTotal {
			t.Errorf("workers=%d: scanned+skipped = %d, want %d", workers, cycles, wantTotal)
		}
	}
	if hits := tel.CounterValue(MetricPrefilterHits); hits != wantScans {
		t.Errorf("%s = %d, want %d (one planted literal per scan)", MetricPrefilterHits, hits, wantScans)
	}
	if w := tel.CounterValue(MetricPrefilterWindows); w != wantScans {
		t.Errorf("%s = %d, want %d", MetricPrefilterWindows, w, wantScans)
	}

	var sb strings.Builder
	if err := tel.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		MetricPrefilterScans, MetricPrefilterHits, MetricPrefilterWindows,
		MetricPrefilterScannedCycles, MetricPrefilterSkippedCycles,
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("WriteMetrics output missing %s:\n%s", name, sb.String())
		}
	}
}

// TestPrefilterTelemetryStream pins the same partition for the streaming
// path: one stream, one prefilter scan record, cycles partitioned exactly.
func TestPrefilterTelemetryStream(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{{Expr: `alert[0-9]`, Code: 5}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(TelemetryOptions{})
	eng.SetTelemetry(tel)
	st, err := eng.NewStream(nil)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(strings.Repeat("quiet ", 500) + "alert1" + strings.Repeat(" quiet", 500))
	for off := 0; off < len(input); off += 64 {
		end := off + 64
		if end > len(input) {
			end = len(input)
		}
		if _, err := st.Write(input[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Close()
	if got := tel.CounterValue(MetricPrefilterScans); got != 1 {
		t.Errorf("%s = %d, want 1", MetricPrefilterScans, got)
	}
	cycles := tel.CounterValue(MetricPrefilterScannedCycles) +
		tel.CounterValue(MetricPrefilterSkippedCycles)
	if want := stats.KernelCycles + stats.SkippedCycles; cycles != want {
		t.Errorf("stream scanned+skipped counters = %d, want %d", cycles, want)
	}
}

// TestNotePrefilterDetachedZeroAlloc pins the disabled-telemetry cost:
// recording into a nil collector must not allocate (and so cannot slow the
// detached hot path).
func TestNotePrefilterDetachedZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		notePrefilter(nil, 3, 2, 100, 900)
	})
	if allocs != 0 {
		t.Fatalf("notePrefilter(nil, ...) allocates %v per call, want 0", allocs)
	}
}
