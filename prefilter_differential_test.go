package sunder

import (
	"testing"

	"sunder/internal/workload"
)

// comparePrefiltered asserts the prefiltered result is observably
// identical to the unfiltered one: same matches, Reports and ReportCycles,
// and the filtered kernel + skipped cycles reconstruct the unfiltered
// kernel exactly (every cycle is either executed or provably match-free).
func comparePrefiltered(t *testing.T, label string, base, filt *ScanResult) {
	t.Helper()
	if !matchesEqual(sortedMatches(base.Matches), sortedMatches(filt.Matches)) {
		t.Errorf("%s: matches diverged (%d unfiltered vs %d filtered)",
			label, len(base.Matches), len(filt.Matches))
	}
	if base.Stats.Reports != filt.Stats.Reports || base.Stats.ReportCycles != filt.Stats.ReportCycles {
		t.Errorf("%s: reports %d/%d filtered vs %d/%d unfiltered",
			label, filt.Stats.Reports, filt.Stats.ReportCycles,
			base.Stats.Reports, base.Stats.ReportCycles)
	}
	if got := filt.Stats.KernelCycles + filt.Stats.SkippedCycles; got != base.Stats.KernelCycles {
		t.Errorf("%s: kernel %d + skipped %d = %d, want unfiltered kernel %d",
			label, filt.Stats.KernelCycles, filt.Stats.SkippedCycles, got, base.Stats.KernelCycles)
	}
}

// TestPrefilterDifferential is the acceptance battery: for every benchmark
// workload, an engine compiled with PrefilterOn must be observably
// invisible on the sequential, parallel and streaming scan paths. Rule
// sets without usable literals (wide-class automata) take the no-filter
// verdict and are exercised as the pass-through case.
func TestPrefilterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full 19-benchmark differential in long mode only")
	}
	const inputLen = 6000
	workers := []int{1, 2, 4, 8}
	chunks := []int{1, 13, 97}
	for _, name := range workload.Names() {
		w, err := workload.Get(name, workload.DefaultScale, inputLen)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		base, err := fromByteNFA(w.Automaton, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opts.Prefilter = PrefilterOn
		filt, err := fromByteNFA(w.Automaton, opts)
		if err != nil {
			t.Fatalf("%s (prefiltered): %v", name, err)
		}
		t.Logf("%s: prefilter strategy %s (%d literals)",
			name, filt.Info().PrefilterStrategy, len(filt.Info().PrefilterLiterals))

		bseq, err := base.Scan(w.Input)
		if err != nil {
			t.Fatal(err)
		}
		fseq, err := filt.Scan(w.Input)
		if err != nil {
			t.Fatal(err)
		}
		comparePrefiltered(t, name+"/seq", bseq, fseq)

		for _, nw := range workers {
			fpar, err := filt.ScanParallel(w.Input, ScanOptions{Workers: nw})
			if err != nil {
				t.Fatal(err)
			}
			comparePrefiltered(t, name+"/par", bseq, fpar)
		}

		for _, chunk := range chunks {
			var got []Match
			st, err := filt.Clone().NewStream(func(m Match) { got = append(got, m) })
			if err != nil {
				t.Fatal(err)
			}
			for off := 0; off < len(w.Input); off += chunk {
				end := off + chunk
				if end > len(w.Input) {
					end = len(w.Input)
				}
				if _, err := st.Write(w.Input[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			stats := st.Close()
			label := name + "/stream"
			if !matchesEqual(sortedMatches(bseq.Matches), sortedMatches(got)) {
				t.Errorf("%s chunk=%d: matches diverged (%d vs %d)",
					label, chunk, len(bseq.Matches), len(got))
			}
			if stats.Reports != bseq.Stats.Reports || stats.ReportCycles != bseq.Stats.ReportCycles {
				t.Errorf("%s chunk=%d: reports %d/%d, want %d/%d",
					label, chunk, stats.Reports, stats.ReportCycles,
					bseq.Stats.Reports, bseq.Stats.ReportCycles)
			}
			if got := stats.KernelCycles + stats.SkippedCycles; got != bseq.Stats.KernelCycles {
				t.Errorf("%s chunk=%d: kernel %d + skipped %d != %d",
					label, chunk, stats.KernelCycles, stats.SkippedCycles, bseq.Stats.KernelCycles)
			}
		}
	}
}

// TestPrefilterNoLiteralVerdict pins the conservative verdict: a rule set
// whose matches need no literal (a bare wide class) must disable the
// filter, report why, and scan exactly like an unfiltered engine.
func TestPrefilterNoLiteralVerdict(t *testing.T) {
	patterns := []Pattern{{Expr: `needle`, Code: 1}, {Expr: `[a-z]`, Code: 2}}
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	filt, err := Compile(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	if filt.pre.enabled() {
		t.Fatalf("expected no-filter verdict, got strategy %s", filt.Info().PrefilterStrategy)
	}
	info := filt.Info()
	if info.PrefilterStrategy == "off" || info.PrefilterLiterals != nil {
		t.Errorf("Info must carry the disable reason, got %q / %q",
			info.PrefilterStrategy, info.PrefilterLiterals)
	}
	base, err := Compile(patterns, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("a needle in a HAYSTACK 0123 xyz")
	bres, err := base.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := filt.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	comparePrefiltered(t, "no-filter", bres, fres)
	if fres.Stats.SkippedCycles != 0 || fres.Stats.PrefilterWindows != 0 {
		t.Errorf("disabled filter must not report windows/skips: %+v", fres.Stats)
	}
}

// TestPrefilterSkipsNoMatchInput pins the fast path itself: on an input
// with no literal occurrence the whole scan is skipped.
func TestPrefilterSkipsNoMatchInput(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{{Expr: `EXPLOIT[0-9]`, Code: 7}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.pre.enabled() {
		t.Fatalf("filter not enabled: %s", eng.Info().PrefilterStrategy)
	}
	input := make([]byte, 100000)
	for i := range input {
		input[i] = byte('a' + i%23)
	}
	res, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || res.Stats.Reports != 0 {
		t.Fatalf("unexpected matches on literal-free input: %+v", res.Stats)
	}
	if res.Stats.KernelCycles != 0 || res.Stats.SkippedCycles == 0 {
		t.Fatalf("expected a full skip, got %+v", res.Stats)
	}
	if len(res.PerPU) == 0 {
		t.Fatal("skipped scan must still shape PerPU")
	}
}
