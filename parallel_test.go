package sunder

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// sameScan asserts the fields ScanParallel promises to reproduce exactly:
// the match stream and the Kernel/Reports/ReportCycles statistics.
// StallCycles and Flushes are per-execution device accounting and are
// deliberately excluded.
func sameScan(t *testing.T, label string, got, want *ScanResult) {
	t.Helper()
	if len(got.Matches) != len(want.Matches) {
		t.Errorf("%s: %d matches, want %d", label, len(got.Matches), len(want.Matches))
		return
	}
	for i := range want.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Errorf("%s: match %d = %+v, want %+v", label, i, got.Matches[i], want.Matches[i])
			return
		}
	}
	if got.Stats.KernelCycles != want.Stats.KernelCycles {
		t.Errorf("%s: KernelCycles %d, want %d", label, got.Stats.KernelCycles, want.Stats.KernelCycles)
	}
	if got.Stats.Reports != want.Stats.Reports {
		t.Errorf("%s: Reports %d, want %d", label, got.Stats.Reports, want.Stats.Reports)
	}
	if got.Stats.ReportCycles != want.Stats.ReportCycles {
		t.Errorf("%s: ReportCycles %d, want %d", label, got.Stats.ReportCycles, want.Stats.ReportCycles)
	}
}

// genPatterns draws a small rule set from shard-friendly templates:
// literals, classes, bounded counts and an anchored rule — every shape the
// sharded path supports (unbounded `.*` shapes are covered separately by
// the fallback test).
func genPatterns(rng *rand.Rand) []Pattern {
	alpha := "abcd"
	lit := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return sb.String()
	}
	pats := []Pattern{
		{Expr: lit(2 + rng.Intn(6)), Code: 1},
		{Expr: lit(1) + "[ab]" + lit(1) + "+", Code: 2},
		{Expr: lit(1) + "{1,3}" + lit(2), Code: 3},
	}
	if rng.Intn(2) == 0 {
		pats = append(pats, Pattern{Expr: "^" + lit(3), Code: 4})
	}
	return pats
}

// genInput builds a random input with pattern occurrences planted
// throughout — including dense periodic plants so that wherever the shard
// boundaries land, matches straddle them.
func genInput(rng *rand.Rand, pats []Pattern, n int) []byte {
	alpha := "abcdxyz"
	in := make([]byte, n)
	for i := range in {
		in[i] = alpha[rng.Intn(len(alpha))]
	}
	// Plant literal-ish fragments of each pattern at a short period.
	for _, p := range pats {
		frag := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'd' {
				return r
			}
			return -1
		}, p.Expr)
		if frag == "" {
			continue
		}
		period := 37 + rng.Intn(64)
		for off := rng.Intn(period); off+len(frag) < n; off += period {
			copy(in[off:], frag)
		}
	}
	return in
}

// TestScanParallelDifferential is the property-based harness: for random
// rule sets and random inputs, ScanParallel ≡ Scan ≡ funcsim across worker
// counts 1..N and input sizes from empty to multi-shard.
func TestScanParallelDifferential(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed=", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			pats := genPatterns(rng)
			eng, err := Compile(pats, DefaultOptions())
			if err != nil {
				t.Fatalf("Compile(%v): %v", pats, err)
			}
			sizes := []int{0, 1, 7, 100, 4096 + rng.Intn(4096)}
			for _, n := range sizes {
				input := genInput(rng, pats, n)
				want, err := eng.Scan(input)
				if err != nil {
					t.Fatal(err)
				}
				// The architectural simulator itself is cross-checked
				// against the functional simulator and the byte automaton.
				if err := eng.Verify(input); err != nil {
					t.Fatalf("n=%d: funcsim divergence: %v", n, err)
				}
				for workers := 1; workers <= 6; workers++ {
					got, err := eng.ScanParallel(input, ScanOptions{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					sameScan(t, fmt.Sprintf("pats=%v n=%d workers=%d", pats, n, workers), got, want)
				}
			}
		})
	}
}

// TestScanParallelBoundaryStraddle plants matches at every offset around
// the shard boundaries: a long literal repeated back to back, so wherever
// a boundary falls, an occurrence crosses it.
func TestScanParallelBoundaryStraddle(t *testing.T) {
	pat := "abcdabcaab" // 10 bytes, longer than the automaton's unit depth between boundaries
	eng, err := Compile([]Pattern{{Expr: pat, Code: 7}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte(pat), 2000) // 20 KB: shards at default floor
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) != 2000 {
		t.Fatalf("sequential found %d matches, want 2000", len(want.Matches))
	}
	for _, workers := range []int{2, 3, 4, 8} {
		got, err := eng.ScanParallel(input, ScanOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sameScan(t, fmt.Sprint("workers=", workers), got, want)
	}
}

// TestScanParallelAnchored covers start-of-data handling: the anchored
// rule must fire for the true input start only, never for a shard's local
// cycle zero.
func TestScanParallelAnchored(t *testing.T) {
	eng, err := Compile([]Pattern{
		{Expr: "^abca", Code: 1},
		{Expr: "bcab", Code: 2},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("abca"), 6000)
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	anchored := 0
	for _, m := range want.Matches {
		if m.Code == 1 {
			anchored++
		}
	}
	if anchored != 1 {
		t.Fatalf("sequential found %d anchored matches, want 1", anchored)
	}
	got, err := eng.ScanParallel(input, ScanOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameScan(t, "anchored", got, want)
}

// TestScanParallelUnboundedFallback: `.*`-style rules cannot shard; the
// parallel path must fall back and still agree with Scan.
func TestScanParallelUnboundedFallback(t *testing.T) {
	eng, err := Compile([]Pattern{{Expr: "ab.*cd", Code: 1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("abxxcdyy"), 4000)
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ScanParallel(input, ScanOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameScan(t, "dotstar fallback", got, want)
	// On the fallback path even the device accounting matches.
	if got.Stats != want.Stats {
		t.Errorf("fallback Stats = %+v, want %+v", got.Stats, want.Stats)
	}
}

// TestScanBatchMatchesScan: every batch result equals its sequential scan.
func TestScanBatchMatchesScan(t *testing.T) {
	eng, err := Compile([]Pattern{
		{Expr: "abc", Code: 1},
		{Expr: "b[cd]d+", Code: 2},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	inputs := make([][]byte, 24)
	for i := range inputs {
		inputs[i] = genInput(rng, []Pattern{{Expr: "abc"}, {Expr: "bcdd"}}, 200+rng.Intn(3000))
	}
	got, err := eng.ScanBatch(inputs, ScanOptions{Workers: 4, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inputs) {
		t.Fatalf("%d results, want %d", len(got), len(inputs))
	}
	for i, in := range inputs {
		want, err := eng.Scan(in)
		if err != nil {
			t.Fatal(err)
		}
		sameScan(t, fmt.Sprint("input ", i), got[i], want)
		// Independent whole scans reproduce the full device accounting.
		if got[i].Stats != want.Stats {
			t.Errorf("input %d: Stats = %+v, want %+v", i, got[i].Stats, want.Stats)
		}
	}
}

// TestScanParallelGuardedFallback: with a fault policy armed the parallel
// paths serialize through the recovery guard and still match.
func TestScanParallelGuardedFallback(t *testing.T) {
	eng, err := Compile([]Pattern{{Expr: "abbc", Code: 1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("xabbcy"), 500)
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultFaultPolicy()
	pol.MatchFlipRate = 1e-4
	pol.Seed = 3
	if err := eng.SetFaultPolicy(&pol); err != nil {
		t.Fatal(err)
	}
	got, err := eng.ScanParallel(input, ScanOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil {
		t.Error("guarded parallel scan lost its fault report")
	}
	sameScan(t, "guarded", got, want)

	batch, err := eng.ScanBatch([][]byte{input, input}, ScanOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range batch {
		sameScan(t, fmt.Sprint("guarded batch ", i), res, want)
	}
}

func TestEngineClone(t *testing.T) {
	eng, err := Compile([]Pattern{{Expr: "abc", Code: 1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("zzabczz")
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	clone := eng.Clone()
	got, err := clone.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	sameScan(t, "clone", got, want)
	if got.Stats != want.Stats {
		t.Errorf("clone Stats = %+v, want %+v", got.Stats, want.Stats)
	}
	// Streams on the original must not disturb the clone and vice versa.
	s1, err := eng.NewStream(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := clone.NewStream(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Write(input); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	st1, st2 := s1.Close(), s2.Close()
	if st1.Reports != want.Stats.Reports {
		t.Errorf("stream on original: Reports %d, want %d", st1.Reports, want.Stats.Reports)
	}
	if st2.Reports != 1 {
		t.Errorf("stream on clone: Reports %d, want 1", st2.Reports)
	}
}
