package sunder

import (
	"sort"
	"testing"

	"sunder/internal/workload"
)

// sortedMatches returns a position-then-code sorted copy for order-free
// comparison: pruning may reorder same-cycle matches across PUs, which is
// not an observable property of the scan API.
func sortedMatches(ms []Match) []Match {
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Position != out[j].Position {
			return out[i].Position < out[j].Position
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPruneDifferential is the acceptance criterion for compile-time
// pruning: for every benchmark, an engine compiled with Options.Prune must
// produce byte-identical scan results — matches, Reports, ReportCycles and
// KernelCycles — on both the sequential and the parallel scan path.
// (StallCycles and Flushes depend on region layout, which pruning may
// legitimately change.)
func TestPruneDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full 19-benchmark differential in long mode only")
	}
	const inputLen = 6000
	for _, name := range workload.Names() {
		w, err := workload.Get(name, workload.DefaultScale, inputLen)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		base, err := fromByteNFA(w.Automaton, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opts.Prune = true
		pruned, err := fromByteNFA(w.Automaton, opts)
		if err != nil {
			t.Fatalf("%s (pruned): %v", name, err)
		}
		if got, want := pruned.Info().PrunedStates, base.Info().DeviceStates-pruned.Info().DeviceStates; got != want {
			t.Errorf("%s: Info().PrunedStates = %d, state delta %d", name, got, want)
		}

		bseq, err := base.Scan(w.Input)
		if err != nil {
			t.Fatal(err)
		}
		pseq, err := pruned.Scan(w.Input)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(sortedMatches(bseq.Matches), sortedMatches(pseq.Matches)) {
			t.Errorf("%s: sequential matches diverged after pruning (%d vs %d)",
				name, len(bseq.Matches), len(pseq.Matches))
		}
		if bseq.Stats.Reports != pseq.Stats.Reports ||
			bseq.Stats.ReportCycles != pseq.Stats.ReportCycles ||
			bseq.Stats.KernelCycles != pseq.Stats.KernelCycles {
			t.Errorf("%s: sequential stats diverged: %+v vs %+v", name, bseq.Stats, pseq.Stats)
		}

		bpar, err := base.ScanParallel(w.Input, ScanOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		ppar, err := pruned.ScanParallel(w.Input, ScanOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(sortedMatches(bpar.Matches), sortedMatches(ppar.Matches)) {
			t.Errorf("%s: parallel matches diverged after pruning (%d vs %d)",
				name, len(bpar.Matches), len(ppar.Matches))
		}
		if bpar.Stats.Reports != ppar.Stats.Reports ||
			bpar.Stats.ReportCycles != ppar.Stats.ReportCycles ||
			bpar.Stats.KernelCycles != ppar.Stats.KernelCycles {
			t.Errorf("%s: parallel stats diverged: %+v vs %+v", name, bpar.Stats, ppar.Stats)
		}
	}
}

// TestPruneOptionShrinksLevenshtein pins that Options.Prune actually
// removes states where dead states exist (the Levenshtein widgets carry
// subsumed insertion variants at rate 4).
func TestPruneOptionShrinksLevenshtein(t *testing.T) {
	w, err := workload.Get("Levenshtein", workload.DefaultScale, 2000)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Prune = true
	eng, err := fromByteNFA(w.Automaton, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Info().PrunedStates == 0 {
		t.Fatal("expected pruned states on Levenshtein at rate 4, got 0")
	}
}
