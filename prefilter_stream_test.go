package sunder

import (
	"errors"
	"testing"
)

// TestPrefilterStreamChunkEdges is the window-straddle regression: a
// candidate window overlapping a chunk boundary must carry its warm-up
// state into the next chunk. Literals are planted exactly at every chunk
// edge and one byte to each side, for every chunk size the stream tests
// use; matches and statistics must equal the whole-input Scan regardless.
func TestPrefilterStreamChunkEdges(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{
		{Expr: `EDGE[0-9]`, Code: 1},
		{Expr: `mark\d\d`, Code: 2},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.pre.enabled() {
		t.Fatalf("filter not enabled: %s", eng.Info().PrefilterStrategy)
	}
	for _, chunk := range []int{1, 2, 7, 13, 64, 97} {
		input := make([]byte, 6*chunk+5)
		for i := range input {
			input[i] = '.'
		}
		// Plant a literal starting at a boundary, one straddling it from
		// one byte before, and one ending exactly on it.
		plant := func(at int, s string) {
			if at >= 0 && at+len(s) <= len(input) {
				copy(input[at:], s)
			}
		}
		plant(chunk, "EDGE1")
		plant(3*chunk-1, "mark22")
		plant(5*chunk-len("EDGE3"), "EDGE3")

		want, err := eng.Clone().Scan(input)
		if err != nil {
			t.Fatal(err)
		}
		var got []Match
		st, err := eng.Clone().NewStream(func(m Match) { got = append(got, m) })
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			if _, err := st.Write(input[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		stats := st.Close()
		if !matchesEqual(sortedMatches(want.Matches), sortedMatches(got)) {
			t.Errorf("chunk=%d: stream matches %v != scan %v", chunk, got, want.Matches)
		}
		if stats.Reports != want.Stats.Reports || stats.ReportCycles != want.Stats.ReportCycles {
			t.Errorf("chunk=%d: reports %d/%d, want %d/%d",
				chunk, stats.Reports, stats.ReportCycles, want.Stats.Reports, want.Stats.ReportCycles)
		}
		if got := stats.KernelCycles + stats.SkippedCycles; got != want.Stats.KernelCycles+want.Stats.SkippedCycles {
			t.Errorf("chunk=%d: cycle accounting %d, want %d", chunk, got,
				want.Stats.KernelCycles+want.Stats.SkippedCycles)
		}
		if len(want.Matches) == 0 {
			t.Fatalf("chunk=%d: test is vacuous, no matches planted", chunk)
		}
	}
}

// TestPrefilterStreamTailLiteral pins the pad-tail hazard on the filtered
// stream: a literal ending exactly at the last input byte, and input whose
// suffix is a literal prefix completed only by the pad, must both produce
// Stats identical to Scan.
func TestPrefilterStreamTailLiteral(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{{Expr: `tail.`, Code: 9}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range []string{
		"......tailX",   // match ends at the last byte
		"1234567tail",   // literal "tail" at the end; `.` satisfied by pad only
		"odd bytes tai", // literal prefix at the end, odd length
	} {
		want, err := eng.Clone().Scan([]byte(input))
		if err != nil {
			t.Fatal(err)
		}
		var got []Match
		st, err := eng.Clone().NewStream(func(m Match) { got = append(got, m) })
		if err != nil {
			t.Fatal(err)
		}
		for i := range input {
			if _, err := st.Write([]byte{input[i]}); err != nil {
				t.Fatal(err)
			}
		}
		stats := st.Close()
		if !matchesEqual(sortedMatches(want.Matches), sortedMatches(got)) {
			t.Errorf("%q: stream matches %v != scan %v", input, got, want.Matches)
		}
		if stats.Reports != want.Stats.Reports || stats.ReportCycles != want.Stats.ReportCycles {
			t.Errorf("%q: reports %d/%d, want %d/%d",
				input, stats.Reports, stats.ReportCycles, want.Stats.Reports, want.Stats.ReportCycles)
		}
	}
}

// TestPrefilterStreamUnboundedDeferred covers the deferred-start path: a
// cyclic pattern (unbounded dependence window) streams correctly both when
// a hit arrives mid-stream and when the stream is hit-free.
func TestPrefilterStreamUnboundedDeferred(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{{Expr: `begin.*end`, Code: 3}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.pre.enabled() {
		t.Fatalf("filter not enabled: %s", eng.Info().PrefilterStrategy)
	}
	if eng.pre.bounded {
		t.Fatal("pattern must have an unbounded dependence window")
	}

	input := []byte("xxxx begin middle end yyyy begin-end zz")
	want, err := eng.Clone().Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("vacuous: pattern did not match")
	}
	for _, chunk := range []int{1, 5, 100} {
		var got []Match
		st, err := eng.Clone().NewStream(func(m Match) { got = append(got, m) })
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			if _, err := st.Write(input[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		stats := st.Close()
		if !matchesEqual(sortedMatches(want.Matches), sortedMatches(got)) {
			t.Errorf("chunk=%d: matches %v != %v", chunk, got, want.Matches)
		}
		if stats.Reports != want.Stats.Reports || stats.ReportCycles != want.Stats.ReportCycles {
			t.Errorf("chunk=%d: reports %d/%d, want %d/%d",
				chunk, stats.Reports, stats.ReportCycles, want.Stats.Reports, want.Stats.ReportCycles)
		}
	}

	// Hit-free stream: everything skipped, zero reports.
	st, err := eng.Clone().NewStream(func(m Match) { t.Errorf("unexpected match %+v", m) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	stats := st.Close()
	if stats.KernelCycles != 0 || stats.SkippedCycles == 0 || stats.Reports != 0 {
		t.Errorf("hit-free deferred stream: %+v", stats)
	}
}

// TestPrefilterStreamDeferredBufferFull pins the deferred-buffer cap: an
// unbounded-window ruleset fed more than maxDeferredUnits units without a
// literal hit must surface ErrDeferredBufferFull from Write (sticky) rather
// than silently degrade, and Close must stay valid and idempotent after it.
func TestPrefilterStreamDeferredBufferFull(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefilter = PrefilterOn
	eng, err := Compile([]Pattern{{Expr: `begin.*end`, Code: 3}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.pre.enabled() || eng.pre.bounded {
		t.Fatalf("want engaged unbounded filter, got %s bounded=%v",
			eng.Info().PrefilterStrategy, eng.pre.bounded)
	}
	st, err := eng.NewStream(func(m Match) { t.Errorf("unexpected match %+v", m) })
	if err != nil {
		t.Fatal(err)
	}
	// Literal-free filler: > maxDeferredUnits units (su units per byte).
	su := eng.nibble.SymbolUnits
	chunk := make([]byte, 64<<10)
	for i := range chunk {
		chunk[i] = 'x'
	}
	need := maxDeferredUnits/su + len(chunk)
	var wedged error
	written := 0
	for written < need+len(chunk) {
		_, err := st.Write(chunk)
		if err != nil {
			wedged = err
			break
		}
		written += len(chunk)
	}
	if !errors.Is(wedged, ErrDeferredBufferFull) {
		t.Fatalf("wrote %d bytes (> cap %d units) without ErrDeferredBufferFull; err=%v",
			written, maxDeferredUnits, wedged)
	}
	if !errors.Is(st.Err(), ErrDeferredBufferFull) {
		t.Fatalf("Err() = %v, want ErrDeferredBufferFull", st.Err())
	}
	// Sticky: further writes keep failing with the same error.
	if _, err := st.Write([]byte("more")); !errors.Is(err, ErrDeferredBufferFull) {
		t.Fatalf("post-wedge Write err = %v", err)
	}
	// Close stays valid and idempotent: everything buffered was proven
	// match-free, so it is skipped, and a second Close returns the same.
	first := st.Close()
	if first.KernelCycles != 0 || first.SkippedCycles == 0 || first.Reports != 0 {
		t.Errorf("post-wedge Close stats: %+v", first)
	}
	if again := st.Close(); again != first {
		t.Errorf("Close not idempotent after wedge: %+v != %+v", again, first)
	}
	if _, err := st.Write([]byte("x")); !errors.Is(err, ErrClosedStream) {
		t.Errorf("write after close: %v", err)
	}
}
