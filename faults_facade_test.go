package sunder

import (
	"strings"
	"testing"
)

func faultPatterns() []Pattern {
	return []Pattern{{Expr: `ab+c`, Code: 1}, {Expr: `zz`, Code: 2}}
}

func faultInput() []byte {
	return []byte(strings.Repeat("xabbczzy", 120))
}

// TestGuardedScanMatchesUnguarded is the façade-level acceptance check: a
// scan that recovers from injected faults returns exactly the matches of a
// fault-free scan.
func TestGuardedScanMatchesUnguarded(t *testing.T) {
	opts := DefaultOptions()
	want, err := func() (*ScanResult, error) {
		eng, err := Compile(faultPatterns(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Scan(faultInput())
	}()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := Compile(faultPatterns(), opts)
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultFaultPolicy()
	pol.CheckpointInterval = 16
	pol.MatchFlipRate = 0.005
	pol.ReportFlipRate = 0.005
	pol.Seed = 5
	if err := eng.SetFaultPolicy(&pol); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Scan(faultInput())
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil {
		t.Fatal("guarded scan returned no fault report")
	}
	if got.Faults.Injected == 0 {
		t.Fatal("expected injections at these rates (seed-dependent; adjust seed)")
	}
	if got.Faults.Detected == 0 {
		t.Fatal("injected faults but detected none")
	}
	if got.Faults.Slowdown < 1 {
		t.Fatalf("slowdown %v < 1", got.Faults.Slowdown)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("guarded scan found %d matches, fault-free %d", len(got.Matches), len(want.Matches))
	}
	for i := range got.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Fatalf("match %d: guarded %+v, fault-free %+v", i, got.Matches[i], want.Matches[i])
		}
	}
	if got.Stats.Reports != want.Stats.Reports || got.Stats.ReportCycles != want.Stats.ReportCycles {
		t.Fatalf("guarded stats %+v != fault-free %+v", got.Stats, want.Stats)
	}
}

// TestGuardedScanDetectionOnly arms the guard with no injection: a pure
// detection overlay must not change results or report activity.
func TestGuardedScanDetectionOnly(t *testing.T) {
	eng, err := Compile(faultPatterns(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Scan(faultInput())
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultFaultPolicy()
	if err := eng.SetFaultPolicy(&pol); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Scan(faultInput())
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults == nil || got.Faults.Injected != 0 || got.Faults.Detected != 0 {
		t.Fatalf("detection-only fault report: %+v", got.Faults)
	}
	if got.Faults.Slowdown != 1 {
		t.Fatalf("detection-only slowdown %v, want 1", got.Faults.Slowdown)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("detection-only scan found %d matches, plain %d", len(got.Matches), len(want.Matches))
	}
	// Disarming restores the plain path.
	if err := eng.SetFaultPolicy(nil); err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Scan(faultInput())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Faults != nil {
		t.Fatal("fault report present after disarming")
	}
}

// TestGuardedStream checks the streaming path: matches arrive at window
// commits and agree with a fault-free scan.
func TestGuardedStream(t *testing.T) {
	eng, err := Compile(faultPatterns(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Scan(faultInput())
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultFaultPolicy()
	pol.CheckpointInterval = 16
	pol.MatchFlipRate = 0.005
	pol.Seed = 9
	if err := eng.SetFaultPolicy(&pol); err != nil {
		t.Fatal(err)
	}
	var got []Match
	st, err := eng.NewStream(func(m Match) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	input := faultInput()
	for off := 0; off < len(input); off += 37 {
		end := off + 37
		if end > len(input) {
			end = len(input)
		}
		if _, err := st.Write(input[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Close()
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	fr := st.Faults()
	if fr == nil || fr.Injected == 0 {
		t.Fatalf("stream fault report %+v; expected injections (seed-dependent)", fr)
	}
	if len(got) != len(want.Matches) {
		t.Fatalf("guarded stream found %d matches, fault-free scan %d", len(got), len(want.Matches))
	}
	for i := range got {
		if got[i] != want.Matches[i] {
			t.Fatalf("match %d: stream %+v, scan %+v", i, got[i], want.Matches[i])
		}
	}
	if stats.Reports != want.Stats.Reports {
		t.Fatalf("stream reports %d, scan %d", stats.Reports, want.Stats.Reports)
	}
}

func TestSetFaultPolicyValidates(t *testing.T) {
	eng, err := Compile(faultPatterns(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultFaultPolicy()
	bad.MatchFlipRate = 2
	if err := eng.SetFaultPolicy(&bad); err == nil {
		t.Fatal("expected validation error")
	}
	if eng.FaultPolicySet() {
		t.Fatal("rejected policy must not arm the engine")
	}
}
