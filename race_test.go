package sunder

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

// The tests in this file are concurrency hammers: they are meaningful
// under `go test -race` (CI runs them so), and double as functional
// checks — every concurrent result must still equal the sequential one.

// TestScanParallelConcurrent runs many ScanParallel calls on one engine at
// once; all must agree with the sequential reference.
func TestScanParallelConcurrent(t *testing.T) {
	eng, err := Compile([]Pattern{
		{Expr: "abcab", Code: 1},
		{Expr: "b[cd]a", Code: 2},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("abcabdca"), 3000)
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got, err := eng.ScanParallel(input, ScanOptions{Workers: 1 + (g+i)%4})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				sameScan(t, fmt.Sprint("goroutine ", g), got, want)
			}
		}(g)
	}
	wg.Wait()
}

// TestScanBatchConcurrent overlaps two batch scans on one engine.
func TestScanBatchConcurrent(t *testing.T) {
	eng, err := Compile([]Pattern{{Expr: "abca", Code: 1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]byte, 16)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte("xabcay"), 100+50*i)
	}
	wants := make([]*ScanResult, len(inputs))
	for i, in := range inputs {
		w, err := eng.Scan(in)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := eng.ScanBatch(inputs, ScanOptions{Workers: 4, BatchSize: 2})
			if err != nil {
				t.Errorf("batch %d: %v", g, err)
				return
			}
			for i := range inputs {
				sameScan(t, fmt.Sprintf("batch %d input %d", g, i), got[i], wants[i])
			}
		}(g)
	}
	wg.Wait()
}

// TestScanConcurrentSequentialAndBatch audits the contract the docs make
// for the parallel paths: ScanBatch (and ScanParallel) never touch the
// engine's shared machine, so they may overlap a sequential Scan that is
// mutating it. With telemetry attached, the batch paths must read the
// collector through the engine's atomic mirror — reaching into e.machine
// for it is exactly the access this test would flag under -race if it
// crept back in.
func TestScanConcurrentSequentialAndBatch(t *testing.T) {
	eng, err := Compile([]Pattern{
		{Expr: "abcab", Code: 1},
		{Expr: "b[cd]a", Code: 2},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(TelemetryOptions{})
	eng.SetTelemetry(tel)

	seqInput := bytes.Repeat([]byte("abcabdca"), 2000)
	seqWant, err := eng.Scan(seqInput)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]byte, 12)
	wants := make([]*ScanResult, len(inputs))
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte("xabcabdy"), 120+60*i)
		if wants[i], err = eng.Scan(inputs[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Sequential scans mutate the shared machine the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			got, err := eng.Scan(seqInput)
			if err != nil {
				t.Errorf("sequential scan %d: %v", i, err)
				return
			}
			sameScan(t, fmt.Sprint("sequential scan ", i), got, seqWant)
		}
	}()
	// Batch and parallel scans overlap them, on the same engine and on a
	// clone (which must also carry the telemetry-free pristine machine).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := eng
			if g%2 == 1 {
				e = eng.Clone()
			}
			got, err := e.ScanBatch(inputs, ScanOptions{Workers: 3, BatchSize: 2})
			if err != nil {
				t.Errorf("batch %d: %v", g, err)
				return
			}
			for i := range inputs {
				sameScan(t, fmt.Sprintf("batch %d input %d", g, i), got[i], wants[i])
			}
			par, err := e.ScanParallel(seqInput, ScanOptions{Workers: 2})
			if err != nil {
				t.Errorf("parallel %d: %v", g, err)
				return
			}
			sameScan(t, fmt.Sprint("parallel ", g), par, seqWant)
		}(g)
	}
	wg.Wait()
}

// TestConcurrentStreamsOnClones drives one stream per engine clone from
// separate goroutines — the documented pattern for concurrent streaming.
func TestConcurrentStreamsOnClones(t *testing.T) {
	eng, err := Compile([]Pattern{{Expr: "abab", Code: 1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("abab"), 2000)
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			clone := eng.Clone()
			var matches int
			s, err := clone.NewStream(func(Match) { matches++ })
			if err != nil {
				t.Errorf("stream %d: %v", g, err)
				return
			}
			// Feed in ragged chunks to exercise the pending buffer.
			for off := 0; off < len(input); {
				n := 7 + (g+off)%93
				if off+n > len(input) {
					n = len(input) - off
				}
				if _, err := s.Write(input[off : off+n]); err != nil {
					t.Errorf("stream %d: %v", g, err)
					return
				}
				off += n
			}
			st := s.Close()
			if int64(matches) != want.Stats.Reports || st.Reports != want.Stats.Reports {
				t.Errorf("stream %d: %d matches / %d reports, want %d",
					g, matches, st.Reports, want.Stats.Reports)
			}
		}(g)
	}
	wg.Wait()
}

// TestTelemetryAggregationConcurrent checks the counter contract under
// maximum contention: concurrent parallel scans on a shared collector,
// with metric and trace snapshots racing against them.
func TestTelemetryAggregationConcurrent(t *testing.T) {
	eng, err := Compile([]Pattern{{Expr: "abcab", Code: 1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("abcab"), 2000)
	want, err := eng.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(TelemetryOptions{Trace: true, TraceCapacity: 1 << 12})
	eng.SetTelemetry(tel)
	tel.Reset() // drop anything the reference scan recorded

	const scans = 6
	var wg sync.WaitGroup
	for g := 0; g < scans; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := eng.ScanParallel(input, ScanOptions{Workers: 4}); err != nil {
				t.Errorf("scan %d: %v", g, err)
			}
		}(g)
	}
	// Snapshot concurrently with the scans: must not race or crash.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := tel.WriteMetrics(io.Discard); err != nil {
				t.Errorf("WriteMetrics: %v", err)
			}
			if err := tel.WriteTraceJSONL(io.Discard); err != nil {
				t.Errorf("WriteTraceJSONL: %v", err)
			}
			tel.TraceEvents()
		}
	}()
	wg.Wait()

	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for metric, per := range map[string]int64{
		"device_kernel_cycles": want.Stats.KernelCycles,
		"device_reports":       want.Stats.Reports,
		"device_report_cycles": want.Stats.ReportCycles,
	} {
		wantLine := fmt.Sprintf("%s %d\n", metric, per*scans)
		if !bytes.Contains(buf.Bytes(), []byte(wantLine)) {
			t.Errorf("metrics missing %q (aggregation across workers off)\n%s", wantLine, buf.String())
		}
	}
}
