package sunder

import (
	"fmt"
	"io"

	"sunder/internal/hardware"
)

// String returns a one-line summary of the scan statistics.
func (s Stats) String() string {
	out := fmt.Sprintf("%d kernel + %d stall cycles (overhead %.4fx), %d reports in %d report cycles, %d flushes",
		s.KernelCycles, s.StallCycles, s.Overhead(), s.Reports, s.ReportCycles, s.Flushes)
	if s.SkippedCycles > 0 || s.PrefilterWindows > 0 {
		out += fmt.Sprintf(", prefilter skipped %d cycles in %d windows", s.SkippedCycles, s.PrefilterWindows)
	}
	return out
}

// WriteText writes a multi-line rendering of the statistics, including
// the reporting overhead and the modeled device throughput at the given
// processing width (bits per cycle, i.e. 4×Rate; see
// Engine.ThroughputGbps).
func (s Stats) WriteText(w io.Writer, bitsPerCycle int) error {
	_, err := fmt.Fprintf(w,
		"  %d kernel cycles + %d stall cycles: overhead %.4fx, %d flushes\n"+
			"  %d reports in %d report cycles; modeled throughput %.1f Gbit/s\n",
		s.KernelCycles, s.StallCycles, s.Overhead(), s.Flushes,
		s.Reports, s.ReportCycles,
		hardware.ThroughputAtRate(bitsPerCycle, s.Overhead()))
	if err == nil && (s.SkippedCycles > 0 || s.PrefilterWindows > 0) {
		_, err = fmt.Fprintf(w, "  prefilter skipped %d cycles across %d windows\n",
			s.SkippedCycles, s.PrefilterWindows)
	}
	return err
}
