package sunder

import (
	"fmt"
	"io"

	"sunder/internal/hardware"
)

// String returns a one-line summary of the scan statistics.
func (s Stats) String() string {
	return fmt.Sprintf("%d kernel + %d stall cycles (overhead %.4fx), %d reports in %d report cycles, %d flushes",
		s.KernelCycles, s.StallCycles, s.Overhead(), s.Reports, s.ReportCycles, s.Flushes)
}

// WriteText writes a multi-line rendering of the statistics, including
// the reporting overhead and the modeled device throughput at the given
// processing width (bits per cycle, i.e. 4×Rate; see
// Engine.ThroughputGbps).
func (s Stats) WriteText(w io.Writer, bitsPerCycle int) error {
	_, err := fmt.Fprintf(w,
		"  %d kernel cycles + %d stall cycles: overhead %.4fx, %d flushes\n"+
			"  %d reports in %d report cycles; modeled throughput %.1f Gbit/s\n",
		s.KernelCycles, s.StallCycles, s.Overhead(), s.Flushes,
		s.Reports, s.ReportCycles,
		hardware.ThroughputAtRate(bitsPerCycle, s.Overhead()))
	return err
}
