package sunder

import (
	"fmt"

	"sunder/internal/funcsim"
	"sunder/internal/prefilter"
	"sunder/internal/regex"
	"sunder/internal/sched"
	"sunder/internal/telemetry"
)

// PrefilterMode selects the literal-prefilter fast path. The zero value is
// off: existing configurations keep their exact behaviour, including
// cycle-for-cycle identical Stats.
type PrefilterMode int

const (
	// PrefilterOff disables prefiltering (the default).
	PrefilterOff PrefilterMode = iota
	// PrefilterOn extracts required literals from the rule set at compile
	// time and scans input for them before driving the simulated device;
	// regions with no literal occurrence are skipped entirely. Matches,
	// Reports and ReportCycles stay byte-identical to an unfiltered scan;
	// Stats.KernelCycles drops to the executed windows, with the remainder
	// accounted in Stats.SkippedCycles. Rule sets without usable literals
	// take a conservative no-filter verdict and scan unfiltered.
	PrefilterOn
)

// Prefilter telemetry counter names, populated on engines with an
// attached Telemetry when the prefilter is active: filtered scans run,
// literal occurrences found, candidate windows executed, and the split of
// device cycles into scanned (executed) and skipped. Exported so servers
// and tools can read them back via Telemetry.CounterValue.
const (
	MetricPrefilterScans         = "prefilter_scans"
	MetricPrefilterHits          = "prefilter_hits"
	MetricPrefilterWindows       = "prefilter_windows"
	MetricPrefilterScannedCycles = "prefilter_scanned_cycles"
	MetricPrefilterSkippedCycles = "prefilter_skipped_cycles"
)

// notePrefilter records one filtered scan's outcome. With telemetry
// detached (nil collector) it is a single branch and zero allocations.
func notePrefilter(col *telemetry.Collector, hits, windows, scanned, skipped int64) {
	if col == nil {
		return
	}
	col.Counter(MetricPrefilterScans).Inc()
	col.Counter(MetricPrefilterHits).Add(hits)
	col.Counter(MetricPrefilterWindows).Add(windows)
	col.Counter(MetricPrefilterScannedCycles).Add(scanned)
	col.Counter(MetricPrefilterSkippedCycles).Add(skipped)
}

// prefilterPlan is the compile-time product of literal extraction: the
// literal set, the scanner chosen for it, and the window geometry derived
// from the automaton's dependence window. It is immutable after compile
// (the scanner is read-only), so cached artifacts and engine clones share
// one plan.
type prefilterPlan struct {
	lits     [][]byte
	scanner  prefilter.Scanner // nil when the verdict is "no filter"
	strategy string
	reason   string // why the filter disabled itself (scanner == nil)
	// fold marks a canonical case-folded literal set: the scanner matches
	// any ASCII case variant, and tail-hazard checks fold too.
	fold bool

	maxLit int // longest literal, for cross-chunk carry in streams
	rate   int // units per cycle
	su     int // units per byte

	depth   int  // dependence window, cycles
	bounded bool // false: cyclic automaton, windows cannot bound warm-up
	align   int64
	overlap int64
	// maxMatchBytes bounds a match's byte length when bounded; a literal
	// occurrence [q, e) therefore confines the report to the cycles of
	// bytes [e-1, q+maxMatchBytes).
	maxMatchBytes int64
}

func (p *prefilterPlan) enabled() bool { return p != nil && p.scanner != nil }

// newPrefilterPlan finishes an extraction into an executable plan for the
// given engine geometry.
func newPrefilterPlan(e *Engine, ex prefilter.Extraction) *prefilterPlan {
	rate := e.machine.Config().Rate
	su := e.nibble.SymbolUnits
	p := &prefilterPlan{rate: rate, su: su}
	if !ex.OK {
		p.strategy = "off"
		p.reason = ex.Reason
		return p
	}
	p.lits = ex.Literals
	p.fold = ex.FoldCase
	p.scanner = prefilter.NewScannerFold(ex.Literals, ex.FoldCase)
	p.strategy = p.scanner.Strategy()
	if p.fold {
		p.strategy += "+fold"
	}
	p.maxLit = ex.MaxLen
	depth, bounded := sched.DependenceCycles(e.nibble)
	p.depth, p.bounded = depth, bounded
	p.align = sched.Alignment(rate, su)
	p.overlap = sched.Overlap(depth, p.align)
	if bounded {
		p.maxMatchBytes = (int64(depth)+1)*int64(rate)/int64(su) + 2
	}
	return p
}

// buildPrefilter attaches a plan to a freshly compiled engine. The
// automaton extractor handles any rule set (ANML included); when the rule
// set came from regex patterns the AST extractor runs first and wins if it
// succeeds — concatenation islands typically beat automaton suffix walks
// on patterns with wide-class tails.
func buildPrefilter(e *Engine, patterns []Pattern) {
	if e.opts.Prefilter != PrefilterOn {
		return
	}
	if len(patterns) > 0 {
		if lits, fold, ok := requiredPatternLiterals(patterns); ok {
			if pl := newPrefilterPlan(e, prefilter.FromLiteralsFold(lits, fold, prefilter.DefaultConfig())); pl.enabled() {
				e.pre = pl
				return
			}
		}
		if e.pre != nil {
			// Keep the automaton-derived plan fromByteNFA already built.
			return
		}
	}
	e.pre = newPrefilterPlan(e, prefilter.Extract(e.byteNFA, prefilter.DefaultConfig()))
}

// requiredPatternLiterals unions the per-pattern AST literal sets; every
// pattern must yield one for the union to be a required set of the whole
// rule set (any match is a match of some pattern). If any pattern's set is
// case-folded the whole union is folded to canonical form: a fold-aware
// scan of exact literals over-approximates their occurrences, which is
// sound (extra candidate windows, never missed ones).
func requiredPatternLiterals(patterns []Pattern) ([][]byte, bool, bool) {
	var all [][]byte
	fold := false
	for _, p := range patterns {
		lits, f, ok := regex.RequiredLiteralsFold(p.Expr)
		if !ok {
			return nil, false, false
		}
		fold = fold || f
		all = append(all, lits...)
	}
	return all, fold, true
}

// hitSpan converts a literal occurrence at bytes [q, e) into the cycle
// range where a match containing it can report: no earlier than the cycle
// of byte e-1 (the match ends at or after the occurrence) and, when the
// dependence window is bounded, no later than the cycle of byte
// q+maxMatchBytes. One slack cycle on each side absorbs unit/cycle
// boundary effects.
func (p *prefilterPlan) hitSpan(q, e int) sched.CycleSpan {
	start := int64(e-1)*int64(p.su)/int64(p.rate) - 1
	end := (int64(q)+p.maxMatchBytes)*int64(p.su)/int64(p.rate) + 2
	return sched.CycleSpan{Start: start, End: end}
}

// planSpans scans input for literal occurrences and returns candidate
// cycle spans plus the hit count. When the padded tail can complete a
// literal (see prefilter.TailHit), the final cycle is appended as a span:
// phantom pad reports fire there in an unfiltered run and the filtered
// Stats must count them identically.
func (p *prefilterPlan) planSpans(input []byte, totalCycles int64, padUnits int) (spans []sched.CycleSpan, hits int64) {
	p.scanner.Scan(input, func(q, e int) {
		hits++
		spans = append(spans, p.hitSpan(q, e))
	})
	if padUnits > 0 {
		padBytes := (padUnits + p.su - 1) / p.su
		if prefilter.TailHitFold(input, p.lits, padBytes, p.fold) {
			spans = append(spans, sched.CycleSpan{Start: totalCycles - 1, End: totalCycles})
		}
	}
	return spans, hits
}

// scanPrefiltered is the filtered batch scan: literal scan, window
// planning, windowed execution on clones of the pristine compile artifact.
// It never touches the engine's shared machine, so it serves Scan,
// ScanParallel and ScanBatch alike.
func (e *Engine) scanPrefiltered(input []byte, workers int) (*ScanResult, error) {
	p := e.pre
	units := funcsim.BytesToUnits(input, 4)
	padded := funcsim.PadUnits(units, p.rate)
	totalCycles := int64(len(padded) / p.rate)
	col := e.telemetryCollector()

	spans, hits := p.planSpans(input, totalCycles, len(padded)-len(units))

	if len(spans) == 0 {
		// No literal anywhere: the rule set cannot match, and no phantom
		// pad report can fire. Skip the entire input.
		notePrefilter(col, hits, 0, 0, totalCycles)
		out := &ScanResult{
			Stats: Stats{SkippedCycles: totalCycles},
			PerPU: make([]PUStats, e.proto.NumPUs()),
		}
		for i := range out.PerPU {
			out.PerPU[i].PU = i
		}
		return out, nil
	}

	if !p.bounded {
		// Cyclic automaton: windows cannot bound warm-up replay, so a hit
		// anywhere forces a full run. The filter still wins on hit-free
		// inputs (handled above).
		rr := sched.ParallelRun(e.proto, e.nibble, units, sched.RunConfig{
			Workers: workers, RecordEvents: true, Collector: col,
		})
		notePrefilter(col, hits, 1, rr.KernelCycles, 0)
		return e.resultFromRun(rr, len(units), 1, 0), nil
	}

	shards := sched.PlanWindows(spans, totalCycles, p.align, p.overlap)
	rr := sched.WindowedRun(e.proto, e.nibble, padded, shards, sched.RunConfig{
		Workers: workers, RecordEvents: true, Collector: col,
	})
	skipped := totalCycles - rr.KernelCycles
	notePrefilter(col, hits, int64(len(shards)), rr.KernelCycles, skipped)
	return e.resultFromRun(rr, len(units), int64(len(shards)), skipped), nil
}

// resultFromRun assembles a ScanResult from a scheduler run, applying the
// same pad-tail phantom filter as the unfiltered paths.
func (e *Engine) resultFromRun(rr *sched.RunResult, inputUnits int, windows, skipped int64) *ScanResult {
	out := &ScanResult{
		Stats: Stats{
			KernelCycles:     rr.KernelCycles,
			StallCycles:      rr.StallCycles,
			Flushes:          rr.Flushes,
			Reports:          rr.Reports,
			ReportCycles:     rr.ReportCycles,
			PrefilterWindows: windows,
			SkippedCycles:    skipped,
		},
		PerPU: toPUStats(rr.PerPU),
	}
	for _, ev := range rr.Events {
		if ev.Unit >= int64(inputUnits) {
			continue
		}
		out.Matches = append(out.Matches, Match{
			Position: ev.Unit / int64(e.nibble.SymbolUnits),
			Code:     ev.Code,
		})
	}
	return out
}

// PrefilterInfo describes the compiled prefilter for diagnostics.
func (p *prefilterPlan) describe() (strategy string, literals []string) {
	if p == nil {
		return "off", nil
	}
	if p.scanner == nil {
		if p.reason != "" {
			return fmt.Sprintf("off (%s)", p.reason), nil
		}
		return "off", nil
	}
	literals = make([]string, len(p.lits))
	for i, l := range p.lits {
		literals[i] = string(l)
	}
	return p.strategy, literals
}
